//===- store/Cache.cpp - On-disk incremental analysis caches -----------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "store/Cache.h"

#include "cfront/AST.h"
#include "cfront/Serialize.h"
#include "store/Persist.h"
#include "support/RawOstream.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <unistd.h>

using namespace mc;

namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// NodeIndex
//===----------------------------------------------------------------------===//

namespace {

/// Visits the direct children of \p S in the same order cfront/Serialize
/// writes them — the order is part of the stable node identity, so it must
/// never depend on anything but the tree shape.
template <typename Fn> void forEachChildStmt(const Stmt *S, Fn &&Visit) {
  if (const auto *E = dyn_cast<Expr>(S)) {
    switch (E->kind()) {
    case Stmt::SK_Unary:
      Visit(cast<UnaryOperator>(E)->sub());
      break;
    case Stmt::SK_Binary:
      Visit(cast<BinaryOperator>(E)->lhs());
      Visit(cast<BinaryOperator>(E)->rhs());
      break;
    case Stmt::SK_ArraySubscript:
      Visit(cast<ArraySubscriptExpr>(E)->base());
      Visit(cast<ArraySubscriptExpr>(E)->index());
      break;
    case Stmt::SK_Member:
      Visit(cast<MemberExpr>(E)->base());
      break;
    case Stmt::SK_Call: {
      const auto *CE = cast<CallExpr>(E);
      Visit(CE->callee());
      for (const Expr *A : CE->args())
        Visit(A);
      break;
    }
    case Stmt::SK_Cast:
      Visit(cast<CastExpr>(E)->sub());
      break;
    case Stmt::SK_Sizeof:
      if (const Expr *A = cast<SizeofExpr>(E)->argExpr())
        Visit(A);
      break;
    case Stmt::SK_Conditional:
      Visit(cast<ConditionalExpr>(E)->cond());
      Visit(cast<ConditionalExpr>(E)->thenExpr());
      Visit(cast<ConditionalExpr>(E)->elseExpr());
      break;
    case Stmt::SK_InitList:
      for (const Expr *I : cast<InitListExpr>(E)->inits())
        Visit(I);
      break;
    default: // Literals, decl refs, holes: leaves.
      break;
    }
    return;
  }
  switch (S->kind()) {
  case Stmt::SK_Compound:
    for (const Stmt *Sub : cast<CompoundStmt>(S)->body())
      Visit(Sub);
    break;
  case Stmt::SK_Decl:
    for (const VarDecl *VD : cast<DeclStmt>(S)->decls())
      if (const Expr *Init = VD->init())
        Visit(Init);
    break;
  case Stmt::SK_If: {
    const auto *IS = cast<IfStmt>(S);
    Visit(IS->cond());
    if (IS->thenStmt())
      Visit(IS->thenStmt());
    if (IS->elseStmt())
      Visit(IS->elseStmt());
    break;
  }
  case Stmt::SK_While:
    Visit(cast<WhileStmt>(S)->cond());
    if (cast<WhileStmt>(S)->body())
      Visit(cast<WhileStmt>(S)->body());
    break;
  case Stmt::SK_Do:
    if (cast<DoStmt>(S)->body())
      Visit(cast<DoStmt>(S)->body());
    Visit(cast<DoStmt>(S)->cond());
    break;
  case Stmt::SK_For: {
    const auto *FS = cast<ForStmt>(S);
    if (FS->init())
      Visit(FS->init());
    if (FS->cond())
      Visit(FS->cond());
    if (FS->inc())
      Visit(FS->inc());
    if (FS->body())
      Visit(FS->body());
    break;
  }
  case Stmt::SK_Switch:
    Visit(cast<SwitchStmt>(S)->cond());
    if (cast<SwitchStmt>(S)->body())
      Visit(cast<SwitchStmt>(S)->body());
    break;
  case Stmt::SK_Case:
    if (cast<CaseStmt>(S)->value())
      Visit(cast<CaseStmt>(S)->value());
    if (cast<CaseStmt>(S)->sub())
      Visit(cast<CaseStmt>(S)->sub());
    break;
  case Stmt::SK_Default:
    if (cast<DefaultStmt>(S)->sub())
      Visit(cast<DefaultStmt>(S)->sub());
    break;
  case Stmt::SK_Return:
    if (const Expr *V = cast<ReturnStmt>(S)->value())
      Visit(V);
    break;
  case Stmt::SK_Label:
    if (cast<LabelStmt>(S)->sub())
      Visit(cast<LabelStmt>(S)->sub());
    break;
  default: // Break, continue, goto, null: leaves.
    break;
  }
}

} // namespace

void NodeIndex::addFunction(const FunctionDecl *Fn) {
  if (!Fn || !Fn->isDefined())
    return;
  std::vector<const Stmt *> &Order =
      ByFunction[std::string(Fn->name())];
  if (!Order.empty())
    return; // Duplicate definition: keep the first indexing.
  // Iterative pre-order: push children in reverse so they pop in order.
  std::vector<const Stmt *> Work{Fn->body()};
  while (!Work.empty()) {
    const Stmt *S = Work.back();
    Work.pop_back();
    if (!S)
      continue;
    ToId.emplace(S, NodeId{Fn, uint32_t(Order.size())});
    Order.push_back(S);
    std::vector<const Stmt *> Kids;
    forEachChildStmt(S, [&](const Stmt *K) { Kids.push_back(K); });
    for (size_t I = Kids.size(); I-- > 0;)
      Work.push_back(Kids[I]);
  }
}

const Stmt *NodeIndex::nodeOf(const std::string &Fn, uint32_t Ordinal) const {
  auto It = ByFunction.find(Fn);
  if (It == ByFunction.end() || Ordinal >= It->second.size())
    return nullptr;
  return It->second[Ordinal];
}

//===----------------------------------------------------------------------===//
// Artifact payload encoding (grammar primitives live in store/Persist.h)
//===----------------------------------------------------------------------===//

std::string RootArtifact::serialize() const {
  std::string Out;
  putVarint(Out, Reports.size());
  for (const ErrorReport &R : Reports) {
    putStr(Out, R.CheckerName);
    putStr(Out, R.Message);
    putStr(Out, R.File);
    putVarint(Out, R.Line);
    putStr(Out, R.FunctionName);
    putStr(Out, R.VariableName);
    putVarint(Out, R.DistanceLines);
    putVarint(Out, R.Conditionals);
    putVarint(Out, R.IndirectionDepth);
    Out.push_back(R.Interprocedural ? 1 : 0);
    putVarint(Out, R.CallChainLength);
    putStr(Out, R.Annotation);
    putStr(Out, R.GroupKey);
    putStr(Out, R.RuleKey);
    putLoc(Out, R.ErrorLoc);
    putStr(Out, R.WitnessKey);
    putVarint(Out, R.Fingerprint);
    putVarint(Out, R.Steps.size());
    for (const WitnessStep &S : R.Steps) {
      Out.push_back(char(S.K));
      putLoc(Out, S.Loc);
      putVarint(Out, S.Depth);
      putStr(Out, S.Object);
      putStr(Out, S.From);
      putStr(Out, S.To);
    }
    putVarint(Out, R.DroppedSteps);
  }
  putVarint(Out, Rules.size());
  for (const auto &[Key, RS] : Rules) {
    putStr(Out, Key);
    putVarint(Out, RS.Examples);
    putVarint(Out, RS.Counterexamples);
  }
  putVarint(Out, Annots.size());
  for (const Annot &A : Annots) {
    putStr(Out, A.Fn);
    putVarint(Out, A.Ordinal);
    putStr(Out, A.Key);
    putStr(Out, A.Value);
  }
  putVarint(Out, Digests.size());
  for (const Digest &D : Digests) {
    putStr(Out, D.Fn);
    putVarint(Out, D.Value);
  }
  return Out;
}

bool RootArtifact::parse(const std::string &Payload, std::string *Err) {
  auto Fail = [&](const char *Why) {
    if (Err)
      *Err = Why;
    return false;
  };
  PayloadReader P{Payload};
  uint64_t NumReports = P.varint();
  if (NumReports > Payload.size())
    return Fail("corrupt report table");
  Reports.clear();
  Reports.reserve(size_t(NumReports));
  for (uint64_t I = 0; I != NumReports; ++I) {
    ErrorReport R;
    R.CheckerName = P.str();
    R.Message = P.str();
    R.File = P.str();
    R.Line = unsigned(P.varint());
    R.FunctionName = P.str();
    R.VariableName = P.str();
    R.DistanceLines = unsigned(P.varint());
    R.Conditionals = unsigned(P.varint());
    R.IndirectionDepth = unsigned(P.varint());
    R.Interprocedural = P.byte() != 0;
    R.CallChainLength = unsigned(P.varint());
    R.Annotation = P.str();
    R.GroupKey = P.str();
    R.RuleKey = P.str();
    R.ErrorLoc = P.loc();
    R.WitnessKey = P.str();
    R.Fingerprint = P.varint();
    uint64_t NumSteps = P.varint();
    if (P.Failed || NumSteps > Payload.size())
      return Fail("corrupt witness table");
    R.Steps.reserve(size_t(NumSteps));
    for (uint64_t J = 0; J != NumSteps; ++J) {
      WitnessStep S;
      uint8_t K = P.byte();
      if (K > uint8_t(WitnessStep::Kind::Rebind))
        return Fail("bad witness step kind");
      S.K = WitnessStep::Kind(K);
      S.Loc = P.loc();
      S.Depth = unsigned(P.varint());
      S.Object = P.str();
      S.From = P.str();
      S.To = P.str();
      R.Steps.push_back(std::move(S));
    }
    R.DroppedSteps = uint32_t(P.varint());
    if (P.Failed)
      return Fail("truncated report");
    Reports.push_back(std::move(R));
  }
  uint64_t NumRules = P.varint();
  if (NumRules > Payload.size())
    return Fail("corrupt rule table");
  Rules.clear();
  for (uint64_t I = 0; I != NumRules; ++I) {
    std::string Key = P.str();
    RuleStats RS;
    RS.Examples = unsigned(P.varint());
    RS.Counterexamples = unsigned(P.varint());
    if (P.Failed)
      return Fail("truncated rule table");
    Rules.emplace(std::move(Key), RS);
  }
  uint64_t NumAnnots = P.varint();
  if (NumAnnots > Payload.size())
    return Fail("corrupt annotation table");
  Annots.clear();
  Annots.reserve(size_t(NumAnnots));
  for (uint64_t I = 0; I != NumAnnots; ++I) {
    Annot A;
    A.Fn = P.str();
    A.Ordinal = uint32_t(P.varint());
    A.Key = P.str();
    A.Value = P.str();
    if (P.Failed)
      return Fail("truncated annotation table");
    Annots.push_back(std::move(A));
  }
  uint64_t NumDigests = P.varint();
  if (NumDigests > Payload.size())
    return Fail("corrupt digest table");
  Digests.clear();
  Digests.reserve(size_t(NumDigests));
  for (uint64_t I = 0; I != NumDigests; ++I) {
    Digest D;
    D.Fn = P.str();
    D.Value = P.varint();
    if (P.Failed)
      return Fail("truncated digest table");
    Digests.push_back(std::move(D));
  }
  if (P.Failed)
    return Fail("truncated payload");
  if (P.Pos != Payload.size())
    return Fail("trailing bytes after payload");
  return true;
}

//===----------------------------------------------------------------------===//
// AnalysisCache
//===----------------------------------------------------------------------===//

AnalysisCache::AnalysisCache(std::string D) : Dir(std::move(D)) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  Usable = !EC || fs::is_directory(Dir, EC);
  if (!Usable) {
    errs() << "xgcc: cache: cannot open cache directory '" << Dir
           << "'; caching disabled this run\n";
    return;
  }
  acquireLock();
}

void AnalysisCache::acquireLock() {
  std::string LockPath = Dir + "/lock";
  LockFd = ::open(LockPath.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (LockFd < 0) {
    Usable = false;
    errs() << "xgcc: cache: cannot open lock file '" << LockPath
           << "'; caching disabled this run\n";
    return;
  }
  if (::flock(LockFd, LOCK_EX | LOCK_NB) == 0) {
    // Ours. Advertise our pid for the diagnostics of whoever comes second.
    std::string Pid = std::to_string(long(::getpid())) + "\n";
    if (::ftruncate(LockFd, 0) == 0)
      (void)!::write(LockFd, Pid.data(), Pid.size());
    return;
  }
  // Held elsewhere. Read the holder's advertised pid and probe whether that
  // process is still alive: flock drops with its holder, so a conflicting
  // lock normally means a live holder — but a recycled pid or a foreign
  // filesystem can leave the pid file pointing at a ghost, and the
  // distinction belongs in the diagnostic.
  char Buf[32] = {};
  ssize_t N = ::pread(LockFd, Buf, sizeof(Buf) - 1, 0);
  LockHolderPid = N > 0 ? std::strtol(Buf, nullptr, 10) : 0;
  bool HolderAlive =
      LockHolderPid > 0 && (::kill(pid_t(LockHolderPid), 0) == 0 ||
                            errno != ESRCH);
  errs() << "xgcc: cache: directory '" << Dir << "' is locked by ";
  if (LockHolderPid > 0)
    errs() << (HolderAlive ? "running" : "stale-looking") << " process "
           << LockHolderPid;
  else
    errs() << "another process";
  errs() << "; caching disabled this run\n";
  ::close(LockFd);
  LockFd = -1;
  LockConflict = true;
  Usable = false;
}

AnalysisCache::~AnalysisCache() {
  if (LockFd >= 0) {
    ::flock(LockFd, LOCK_UN);
    ::close(LockFd);
  }
}

std::string AnalysisCache::entryPath(Kind K, uint64_t Key) const {
  std::string P = Dir;
  P += K == Kind::Ast ? "/ast-" : "/sum-";
  appendHex64(Key, P);
  P += ".mcc";
  return P;
}

bool AnalysisCache::load(Kind K, uint64_t Key, std::string &PayloadOut) {
  const char *MissName =
      K == Kind::Ast ? kCacheAstMisses : kCacheSummaryMisses;
  if (!Usable) {
    Counters.add(MissName);
    return false;
  }
  std::string Path = entryPath(K, Key);
  std::string Raw;
  if (!readFileBytes(Path, Raw)) {
    Counters.add(MissName);
    return false;
  }
  if (const char *Why = checkPersistHeader(char(K), kCacheFormatVersion, Raw)) {
    errs() << "xgcc: cache: dropping corrupt entry " << Path << " (" << Why
           << ")\n";
    Counters.add(kCacheEvictionsCorrupt);
    Counters.add(MissName);
    std::error_code EC;
    fs::remove(Path, EC);
    return false;
  }
  PayloadOut.assign(Raw, kPersistHeaderSize, Raw.size() - kPersistHeaderSize);
  return true;
}

void AnalysisCache::dropEntry(Kind K, uint64_t Key) {
  Counters.add(kCacheEvictionsCorrupt);
  if (!Usable)
    return;
  std::error_code EC;
  fs::remove(entryPath(K, Key), EC);
}

void AnalysisCache::store(Kind K, uint64_t Key, const std::string &Payload) {
  if (!Usable)
    return;
  std::string Bytes = packPersistHeader(char(K), kCacheFormatVersion, Payload);
  Bytes += Payload;
  // Atomic write; on failure (short write, ENOSPC, rename refusal) the temp
  // file is already unlinked, so a fault-injected store leaves the directory
  // exactly as it found it.
  if (!writeFileAtomic(entryPath(K, Key), Bytes, nullptr)) {
    Counters.add(kCacheWriteFailures);
    if (!WarnedWriteFailure)
      errs() << "xgcc: cache: cannot write to '" << Dir
             << "'; new entries dropped\n";
    WarnedWriteFailure = true;
  }
}

void AnalysisCache::evictToLimit(uint64_t MaxBytes) {
  if (!Usable)
    return;
  struct Entry {
    std::string Path;
    uint64_t Bytes;
    fs::file_time_type MTime;
  };
  std::vector<Entry> Entries;
  uint64_t Total = 0;
  std::error_code EC;
  for (fs::directory_iterator It(Dir, EC), End; !EC && It != End;
       It.increment(EC)) {
    // Only store entries participate in the size policy — never the lock
    // file, the crash journal, or anyone's in-flight temp file.
    if (!It->is_regular_file(EC) || It->path().extension() != ".mcc")
      continue;
    uint64_t Bytes = It->file_size(EC);
    if (EC)
      continue;
    Entries.push_back({It->path().string(), Bytes, It->last_write_time(EC)});
    Total += Bytes;
  }
  if (Total <= MaxBytes)
    return;
  // Oldest first; stable name tie-break so the policy is deterministic.
  std::sort(Entries.begin(), Entries.end(), [](const Entry &A, const Entry &B) {
    if (A.MTime != B.MTime)
      return A.MTime < B.MTime;
    return A.Path < B.Path;
  });
  for (const Entry &E : Entries) {
    if (Total <= MaxBytes)
      break;
    std::error_code RemoveEC;
    fs::remove(E.Path, RemoveEC);
    if (RemoveEC)
      continue;
    Total -= E.Bytes;
    Counters.add(kCacheEvictionsSize);
  }
}

uint64_t AnalysisCache::diskBytes() const {
  if (!Usable)
    return 0;
  uint64_t Total = 0;
  std::error_code EC;
  for (fs::directory_iterator It(Dir, EC), End; !EC && It != End;
       It.increment(EC)) {
    if (!It->is_regular_file(EC) || It->path().extension() != ".mcc")
      continue;
    uint64_t Bytes = It->file_size(EC);
    if (!EC)
      Total += Bytes;
  }
  return Total;
}
