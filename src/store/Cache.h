//===- store/Cache.h - On-disk incremental analysis caches ------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `--cache-dir` incremental layer: two content-addressed on-disk stores
/// that turn a re-run over a mostly-unchanged corpus into a warm replay.
///
///  * The **AST store** keys a per-TU serialized image (cfront's writeMastTU
///    form) by the hash of the TU's post-preprocess token stream, so pass 1
///    deserializes unchanged TUs instead of re-parsing them.
///
///  * The **summary store** keys one *root artifact* per (checker, root): the
///    per-root report buffer, rule counters, annotation delta and per-function
///    summary digests an isolated analysis of that root produced. The key
///    folds the root's body hash, its transitive-callee closure, the checker
///    suite fingerprint and the engine-config fingerprint, so an unchanged
///    root replays its recorded results instead of descending.
///
/// Keys hash content — token text, byte offsets, symbol text — never interned
/// ids or pointers, so a warm run is byte-identical to a cold one at any
/// `--jobs` count and with interning on or off (the determinism contract of
/// PRs 1-6 extended across process boundaries).
///
/// Every cache file carries a versioned header with a payload checksum; any
/// malformed, truncated or version-skewed entry degrades to a miss with a
/// one-line diagnostic and a `cache.evictions.corrupt` bump — never a crash,
/// never a wrong report.
///
//===----------------------------------------------------------------------===//

#ifndef MC_STORE_CACHE_H
#define MC_STORE_CACHE_H

#include "report/ErrorReport.h"
#include "report/ReportManager.h"
#include "support/Hash.h"
#include "support/Metrics.h"

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace mc {

class FunctionDecl;
class Stmt;

/// Bump this when any on-disk encoding changes (cache file header, artifact
/// payload grammar, per-TU image grammar, or a hashing scheme). Old entries
/// then read as version-mismatched and silently miss.
/// v2: ErrorReport gained the stable Fingerprint field.
inline constexpr uint8_t kCacheFormatVersion = 2;

//===----------------------------------------------------------------------===//
// Stable statement identity
//===----------------------------------------------------------------------===//

/// Bidirectional map between statement nodes and their stable cross-run
/// identity `(function name, pre-order ordinal)`. Checker-composition
/// annotations key raw `Stmt *`s; the summary store serializes them through
/// this index. Built once per run over the defined functions' bodies.
class NodeIndex {
public:
  /// Indexes every statement of \p Fn's body in pre-order. No-op when the
  /// function is undefined.
  void addFunction(const FunctionDecl *Fn);

  struct NodeId {
    const FunctionDecl *Fn = nullptr;
    uint32_t Ordinal = 0;
  };

  /// Identity of \p S, or a null-Fn id when \p S is not inside any indexed
  /// body (such annotations make their artifact uncacheable).
  NodeId idOf(const Stmt *S) const {
    auto It = ToId.find(S);
    return It == ToId.end() ? NodeId{} : It->second;
  }

  /// Inverse lookup; null when the (function, ordinal) pair does not exist
  /// in this run's ASTs (a stale artifact — the caller treats it as a miss).
  const Stmt *nodeOf(const std::string &Fn, uint32_t Ordinal) const;

private:
  std::unordered_map<const Stmt *, NodeId> ToId;
  std::map<std::string, std::vector<const Stmt *>, std::less<>> ByFunction;
};

//===----------------------------------------------------------------------===//
// Root artifacts (summary-store payloads)
//===----------------------------------------------------------------------===//

/// Everything an isolated, clean analysis of one (checker, root) pair
/// produced: replaying it is byte-equivalent to re-analyzing the root.
struct RootArtifact {
  /// The per-root report buffer, in add() order (merge() replays them, so
  /// cross-root dedup still picks the same winners a cold run would).
  std::vector<ErrorReport> Reports;
  /// Per-rule example/counterexample counters this root contributed.
  std::map<std::string, RuleStats> Rules;

  /// One checker-composition annotation written (or overwritten) by this
  /// root, keyed by stable node identity.
  struct Annot {
    std::string Fn;
    uint32_t Ordinal = 0;
    std::string Key;
    std::string Value;
  };
  std::vector<Annot> Annots;

  /// Digest of each function summary the analysis materialized (the
  /// engine/Summaries.h canonical text form). --cache-verify cross-checks
  /// these against a fresh recomputation.
  struct Digest {
    std::string Fn;
    uint64_t Value = 0;
  };
  std::vector<Digest> Digests;

  /// Binary payload encoding (store file body). Self-contained: carries its
  /// own counts; corruption is caught by the file-level checksum first and
  /// by structural validation here second.
  std::string serialize() const;
  bool parse(const std::string &Payload, std::string *Err);
};

//===----------------------------------------------------------------------===//
// The on-disk store
//===----------------------------------------------------------------------===//

/// One cache directory holding both stores. File format:
///
///   "MCC1" kind(1) version(1) reserved(2) checksum(8 LE) payload...
///
/// where checksum = FNV-1a of the payload bytes. Writes go through a
/// temporary file + rename so a crashed run never leaves a half-written
/// entry under a valid name.
class AnalysisCache {
public:
  enum class Kind : char { Ast = 'A', Summary = 'S' };

  /// Opens (creating if needed) \p Dir and takes the directory's `lock` file
  /// (flock, non-blocking). On any failure — including another live process
  /// holding the lock — the cache is unusable: every load misses and every
  /// store is dropped, with one diagnostic. The lock keeps a daemon and a
  /// concurrent CLI run from interleaving temp-file writes into one store.
  explicit AnalysisCache(std::string Dir);

  /// Releases the directory lock. The lock file itself stays behind (its pid
  /// payload is only advisory; unlinking would race a waiter's open()).
  ~AnalysisCache();

  AnalysisCache(const AnalysisCache &) = delete;
  AnalysisCache &operator=(const AnalysisCache &) = delete;

  bool usable() const { return Usable; }
  const std::string &dir() const { return Dir; }

  /// True when construction failed specifically because another holder owns
  /// the directory lock. \c lockHolderPid() is that holder's advertised pid
  /// (0 when it could not be read) — a daemon refuses to start on this.
  bool lockConflict() const { return LockConflict; }
  long lockHolderPid() const { return LockHolderPid; }

  /// Loads the entry for \p Key. Returns false on absence or on any header,
  /// version or checksum failure (corrupt entries are unlinked and counted
  /// under cache.evictions.corrupt). Counts misses per kind; the *caller*
  /// counts the hit once payload-level validation also passed, so hit
  /// counters never include entries that were loaded but unusable.
  bool load(Kind K, uint64_t Key, std::string &PayloadOut);

  /// Unlinks \p Key's entry and counts it under cache.evictions.corrupt —
  /// for payload-level validation failures the caller discovers after a
  /// checksum-clean load().
  void dropEntry(Kind K, uint64_t Key);

  /// Stores \p Payload under \p Key. I/O failures are diagnosed once and
  /// otherwise ignored — the cache is an accelerator, never a correctness
  /// dependency.
  void store(Kind K, uint64_t Key, const std::string &Payload);

  /// Deletes oldest entries (by mtime) until the directory holds at most
  /// \p MaxBytes. Counts deletions under cache.evictions.size.
  void evictToLimit(uint64_t MaxBytes);

  /// Total bytes currently resident in the directory.
  uint64_t diskBytes() const;

  /// The counters this cache accumulated (cache.ast.*, cache.summary.*,
  /// cache.evictions.*, cache.bytes). The driver folds them into the run's
  /// metrics snapshot — deliberately outside MC_ENGINE_METRICS so the
  /// --stats line stays byte-stable.
  const MetricsSnapshot &counters() const { return Counters; }
  /// Extra counter bump for cache-adjacent events the driver owns
  /// (--cache-verify checks/mismatches).
  void bump(std::string_view Name, uint64_t Delta = 1) {
    Counters.add(Name, Delta);
  }

private:
  std::string entryPath(Kind K, uint64_t Key) const;
  void acquireLock();

  std::string Dir;
  bool Usable = false;
  bool WarnedWriteFailure = false;
  bool LockConflict = false;
  long LockHolderPid = 0;
  int LockFd = -1;
  MetricsSnapshot Counters;
};

} // namespace mc

#endif // MC_STORE_CACHE_H
