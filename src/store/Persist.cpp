//===- store/Persist.cpp - Shared on-disk persistence helpers ----------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "store/Persist.h"

#include "cfront/Serialize.h" // writeFileBytes
#include "support/Hash.h"

#include <filesystem>
#include <system_error>

#include <unistd.h>

using namespace mc;

namespace fs = std::filesystem;

void mc::putVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(char(uint8_t(V) | 0x80));
    V >>= 7;
  }
  Out.push_back(char(uint8_t(V)));
}

void mc::putStr(std::string &Out, std::string_view S) {
  putVarint(Out, S.size());
  Out.append(S);
}

void mc::putLoc(std::string &Out, SourceLoc L) {
  putVarint(Out, L.fileID());
  putVarint(Out, L.offset());
}

uint8_t PayloadReader::byte() {
  if (Pos >= In.size()) {
    Failed = true;
    return 0;
  }
  return uint8_t(In[Pos++]);
}

uint64_t PayloadReader::varint() {
  uint64_t V = 0;
  unsigned Shift = 0;
  for (;;) {
    uint8_t B = byte();
    V |= uint64_t(B & 0x7f) << Shift;
    if (!(B & 0x80))
      return V;
    Shift += 7;
    if (Shift > 63) {
      Failed = true;
      return 0;
    }
  }
}

std::string PayloadReader::str() {
  uint64_t Len = varint();
  if (Failed || Pos + Len > In.size()) {
    Failed = true;
    return {};
  }
  std::string S(In, Pos, Len);
  Pos += Len;
  return S;
}

SourceLoc PayloadReader::loc() {
  unsigned File = unsigned(varint());
  unsigned Off = unsigned(varint());
  return SourceLoc(File, Off);
}

namespace {
constexpr char kFileMagic[4] = {'M', 'C', 'C', '1'};
} // namespace

std::string mc::packPersistHeader(char Kind, uint8_t Version,
                                  const std::string &Payload) {
  std::string H(kFileMagic, sizeof(kFileMagic));
  H.push_back(Kind);
  H.push_back(char(Version));
  H.push_back(0);
  H.push_back(0);
  uint64_t Sum = fnv1a64(Payload);
  for (int I = 0; I != 8; ++I)
    H.push_back(char(uint8_t(Sum >> (I * 8))));
  return H;
}

const char *mc::checkPersistHeader(char Kind, uint8_t Version,
                                   const std::string &Raw) {
  if (Raw.size() < kPersistHeaderSize)
    return "truncated header";
  if (Raw.compare(0, sizeof(kFileMagic), kFileMagic, sizeof(kFileMagic)) != 0)
    return "bad magic";
  if (Raw[4] != Kind)
    return "wrong store kind";
  if (uint8_t(Raw[5]) != Version)
    return "format version mismatch";
  uint64_t Sum = 0;
  for (int I = 0; I != 8; ++I)
    Sum |= uint64_t(uint8_t(Raw[8 + I])) << (I * 8);
  if (Sum != fnv1a64(std::string_view(Raw).substr(kPersistHeaderSize)))
    return "checksum mismatch";
  return nullptr;
}

bool mc::writeFileAtomic(const std::string &Path, const std::string &Bytes,
                         std::string *Err) {
  std::string Tmp = Path + ".tmp" + std::to_string(long(::getpid()));
  if (!writeFileBytes(Tmp, Bytes)) {
    std::error_code EC;
    fs::remove(Tmp, EC);
    if (Err)
      *Err = "cannot write temporary file '" + Tmp + "'";
    return false;
  }
  std::error_code EC;
  fs::rename(Tmp, Path, EC);
  if (EC) {
    fs::remove(Tmp, EC);
    if (Err)
      *Err = "cannot rename temporary file into '" + Path + "'";
    return false;
  }
  return true;
}
