//===- store/Persist.h - Shared on-disk persistence helpers -----*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistence primitives every on-disk store in the project shares: the
/// varint/length-prefixed payload grammar, the bounds-checked PayloadReader,
/// the versioned+checksummed file frame, and the atomic temp-file+rename
/// write. The incremental cache (store/Cache.*) and the report-lifecycle
/// baseline store (lifecycle/BaselineStore.*) both encode through these, so
/// their corruption behaviour is identical: any malformed, truncated or
/// version-skewed file is detected at the frame before a single payload byte
/// is interpreted.
///
/// File frame:
///
///   "MCC1" kind(1) version(1) reserved(2) checksum(8 LE) payload...
///
/// where checksum = FNV-1a of the payload bytes. The kind byte namespaces
/// stores sharing a directory; the version byte lets each store evolve its
/// payload grammar independently.
///
//===----------------------------------------------------------------------===//

#ifndef MC_STORE_PERSIST_H
#define MC_STORE_PERSIST_H

#include "support/SourceManager.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace mc {

//===----------------------------------------------------------------------===//
// Payload grammar primitives
//===----------------------------------------------------------------------===//

/// Appends \p V as a LEB128-style varint.
void putVarint(std::string &Out, uint64_t V);

/// Appends \p S length-prefixed (varint length, then raw bytes).
void putStr(std::string &Out, std::string_view S);

/// Appends \p L as (fileID, offset) varints.
void putLoc(std::string &Out, SourceLoc L);

/// Cursor over a payload. Every accessor is bounds-checked; the first
/// overrun latches Failed and all subsequent reads return zero values, so
/// decoders validate once at the end instead of after every field.
struct PayloadReader {
  const std::string &In;
  size_t Pos = 0;
  bool Failed = false;

  uint8_t byte();
  uint64_t varint();
  std::string str();
  SourceLoc loc();
};

//===----------------------------------------------------------------------===//
// File frame
//===----------------------------------------------------------------------===//

/// Magic + kind + version + reserved + checksum.
inline constexpr size_t kPersistHeaderSize = 16;

/// Builds the 16-byte frame header for \p Payload.
std::string packPersistHeader(char Kind, uint8_t Version,
                              const std::string &Payload);

/// Validates the frame of \p Raw (magic, kind, version, payload checksum).
/// Returns the failure reason, or null when the frame is intact and the
/// payload starts at kPersistHeaderSize.
const char *checkPersistHeader(char Kind, uint8_t Version,
                               const std::string &Raw);

/// Writes \p Bytes to \p Path through a pid-suffixed temp file + rename, so
/// a crashed writer never leaves a half-written file under a valid name. On
/// failure the temp file is removed and \p Err (when non-null) receives a
/// one-line reason.
bool writeFileAtomic(const std::string &Path, const std::string &Bytes,
                     std::string *Err);

} // namespace mc

#endif // MC_STORE_PERSIST_H
