//===- service/Protocol.h - xgccd wire schema -------------------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The xgccd request/response wire schema: newline-delimited JSON, one
/// `mc.service-request.v1` object per line in, one `mc.service-response.v1`
/// object per line out. The response embeds the exact bytes a standalone
/// `xgcc` run would have printed for the same request (`output`) plus the
/// run's `mc.run-manifest.v1` manifest (as an escaped JSON string, so the
/// response itself stays single-line). See docs/SERVICE.md for the schema
/// and the status taxonomy.
///
/// Both sides parse with the same strict-subset recursive-descent style the
/// manifest reader uses: objects, arrays, strings, unsigned integers and
/// booleans; unknown keys skip, so the schema can grow additively.
///
//===----------------------------------------------------------------------===//

#ifndef MC_SERVICE_PROTOCOL_H
#define MC_SERVICE_PROTOCOL_H

#include "support/Histogram.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mc {

class raw_ostream;

/// Schema identifiers; bump on breaking changes.
inline constexpr const char *kServiceRequestSchema = "mc.service-request.v1";
inline constexpr const char *kServiceResponseSchema = "mc.service-response.v1";
inline constexpr const char *kServiceStatusRequestSchema =
    "mc.service-status.v1";
inline constexpr const char *kServiceStatusReplySchema =
    "mc.service-status-reply.v1";

/// The `schema` value of one wire line, or "" when the line is not an object
/// carrying one. This is how the server routes a line to the right parser
/// without attempting (and diagnosing) every schema in turn.
std::string peekServiceSchema(std::string_view Line);

/// Terminal status of one request. The taxonomy is the robustness contract:
/// a client can branch on status alone without parsing diagnostics.
enum class ServiceStatus {
  Ok,         ///< Analysis ran to completion with full fidelity.
  Incomplete, ///< Analysis ran, but parsing failed or roots were
              ///< degraded/quarantined — partial results, explicit trailer.
  Overloaded, ///< Bounded admission rejected the request (queue full).
              ///< Typed so load balancers can back off without string
              ///< matching.
  Retriable,  ///< Nothing ran: the server is draining, the deadline expired
              ///< in queue, or a previous attempt at this exact request died
              ///< mid-flight (crash-journal recovery). Safe to resend.
  Error,      ///< The request itself is bad (malformed JSON, unknown
              ///< checker, unreadable file). Resending verbatim will fail
              ///< again.
};

const char *serviceStatusName(ServiceStatus S);
/// Parses a status spelling; false on an unknown value.
bool parseServiceStatus(std::string_view Spelling, ServiceStatus &Out);

/// One analysis request. Field-for-field this mirrors the standalone CLI
/// surface it replays (checker selection, -I/-D, --rank/--format/--explain,
/// the engine toggles), plus the service-only knobs: a request-level
/// deadline, and the fault-injection block tests use to exercise every
/// degradation path deterministically.
struct ServiceRequest {
  /// Client-chosen correlation id, echoed verbatim in the response.
  std::string Id;
  /// Source files to analyze, resolved against the *server's* cwd. The
  /// request fingerprint hashes the paths, not the content — content change
  /// detection is the cache's job.
  std::vector<std::string> Files;
  /// Builtin checker names; empty (with no metal) = the full builtin suite,
  /// exactly like the CLI default.
  std::vector<std::string> Checkers;
  /// Inline metal checkers: (name, source text). Inline rather than by path
  /// so the checker fingerprint is self-contained in the request.
  std::vector<std::pair<std::string, std::string>> Metal;
  /// -I include directories, in order.
  std::vector<std::string> IncludeDirs;
  /// -D macro definitions: (name, value); value "1" for bare -DNAME.
  std::vector<std::pair<std::string, std::string>> Defines;
  /// Worker threads (0 = the server's default). Never changes a report byte.
  unsigned Jobs = 0;
  /// Request-level wall-clock deadline in ms, covering queue wait + run
  /// (0 = the server's default). Enforced cooperatively: the remaining
  /// budget clamps the per-root deadline when the request starts.
  uint64_t DeadlineMs = 0;
  std::string Rank = "generic";  ///< generic | statistical | combined.
  std::string Format = "text";   ///< text | json.
  unsigned ExplainTopN = 0;      ///< --explain[=N]; 0 = off.
  bool KeepGoing = false;        ///< --keep-going.
  /// --baseline DIR: report-lifecycle baseline directory, resolved against
  /// the *server's* cwd ("" = no baseline). The server keeps one resident
  /// store per directory; classification still happens per request.
  std::string Baseline;
  bool SuppressKnown = false;    ///< --suppress-known.

  /// The engine-option subset a request may override (the rest keep their
  /// EngineOptions defaults, same as the CLI).
  struct EngineKnobs {
    bool BlockCache = true;
    bool FunctionSummaries = true;
    bool FalsePathPruning = true;
    bool DispatchIndex = true;
    bool StateInterning = true;
    bool Interprocedural = true;
    uint64_t RootDeadlineMs = 0;
    uint64_t RootPathBudget = 0;
    uint64_t MaxActiveStates = 0; ///< 0 = keep the engine default.
    std::string FailOn = "never"; ///< never | error | degraded.

    friend bool operator==(const EngineKnobs &, const EngineKnobs &) = default;
  };
  EngineKnobs Options;

  /// Service-level FaultInjector knobs. Ignored (with a log line) unless the
  /// server runs with --allow-inject.
  struct Inject {
    uint64_t SlowMs = 0;       ///< Sleep before analyzing (a slow request).
    bool Die = false;          ///< _exit() mid-request (crash-journal test).
    bool PoisonChecker = false; ///< Register a fault_injector checker in
                                ///< Fault mode (quarantine/backoff test).

    friend bool operator==(const Inject &, const Inject &) = default;
  };
  Inject InjectKnobs;

  /// Canonical single-line serialization. serialize → parse → serialize is
  /// byte-stable, which is what makes fingerprint() well-defined.
  void serialize(raw_ostream &OS) const;
  std::string serializeToString() const;
  /// Parses one request line. False (with \p Err set when non-null) on
  /// malformed input or a schema mismatch.
  bool parse(std::string_view Line, std::string *Err = nullptr);

  /// Identity of the *work*, independent of the correlation id: the FNV-1a
  /// hash of the canonical serialization with Id cleared. The crash journal
  /// keys on this, so a resent request is recognized after a restart even
  /// though the client picked a fresh id.
  uint64_t fingerprint() const;

  friend bool operator==(const ServiceRequest &,
                         const ServiceRequest &) = default;
};

/// One response line.
struct ServiceResponse {
  std::string Id; ///< Echo of the request id.
  ServiceStatus Status = ServiceStatus::Error;
  /// The exact stdout bytes a standalone `xgcc` run of the same request
  /// would print (reports + count + optional --explain rendering, or the
  /// JSON report array). Byte-identical at any jobs count — the determinism
  /// contract extended across the wire. Empty when nothing ran.
  std::string Output;
  /// The request's private diagnostic stream (what standalone xgcc would
  /// have sent to stderr), plus service-side notes (quarantine exclusions).
  std::string Log;
  /// The run's mc.run-manifest.v1 JSON text, escaped into a string so the
  /// response stays one line. Parse with parseRunManifest. Empty when
  /// nothing ran.
  std::string Manifest;
  /// Human-readable reason for overloaded/retriable/error.
  std::string Error;
  /// The exit code a standalone run would have returned (--fail-on policy).
  unsigned ExitCode = 0;
  uint64_t QueueMs = 0; ///< Admission-to-execution wait.
  uint64_t RunMs = 0;   ///< Execution wall clock.

  void serialize(raw_ostream &OS) const;
  std::string serializeToString() const;
  bool parse(std::string_view Line, std::string *Err = nullptr);

  friend bool operator==(const ServiceResponse &,
                         const ServiceResponse &) = default;
};

/// The status RPC request (`mc.service-status.v1`): ask a live daemon what
/// it is doing. Answered on the connection thread, without entering the
/// worker queue — a wedged executor cannot make the daemon unobservable.
struct ServiceStatusRequest {
  /// Client-chosen correlation id, echoed verbatim in the reply.
  std::string Id;

  void serialize(raw_ostream &OS) const;
  std::string serializeToString() const;
  bool parse(std::string_view Line, std::string *Err = nullptr);

  friend bool operator==(const ServiceStatusRequest &,
                         const ServiceStatusRequest &) = default;
};

/// The status RPC reply (`mc.service-status-reply.v1`). Everything a load
/// balancer, a dashboard, or an operator mid-incident wants from a running
/// daemon: uptime, the request ledger by terminal status, queue pressure,
/// quarantine state, resident warm state, and the latency distributions.
/// See docs/SERVICE.md ("Status RPC") for the schema.
struct ServiceStatusReply {
  std::string Id;       ///< Echo of the request id.
  uint64_t UptimeMs = 0; ///< Since start(); a live daemon reports >= 1.

  /// Requests answered so far, by terminal status (status queries
  /// themselves are not requests and are not counted).
  uint64_t Ok = 0;
  uint64_t Incomplete = 0;
  uint64_t Overloaded = 0;
  uint64_t Retriable = 0;
  uint64_t Error = 0;
  uint64_t Total = 0;

  /// High-water mark of the admission queue depth.
  uint64_t PeakQueueDepth = 0;

  /// The cross-request quarantine table, sorted by checker name.
  struct QuarantineEntry {
    std::string Checker;
    uint64_t Remaining = 0; ///< Completed requests until re-probe.
    uint64_t Faults = 0;    ///< Lifetime fault count (backoff exponent).

    friend bool operator==(const QuarantineEntry &,
                           const QuarantineEntry &) = default;
  };
  std::vector<QuarantineEntry> Quarantine;

  /// Resident baseline store directories, sorted.
  std::vector<std::string> Baselines;

  /// Cumulative cache counters (the `cache.*` dotted names) summed over
  /// every request served, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> CacheCounters;

  /// The latency histograms: `service.{queue_ms,run_ms,e2e_ms}.<status>`,
  /// sorted by name. Every request records into all three families, so each
  /// family's counts sum to Total. Percentiles are precomputed bucket upper
  /// bounds (serialize∘parse∘serialize stays the identity).
  struct HistogramEntry {
    std::string Name;
    uint64_t P50 = 0;
    uint64_t P95 = 0;
    uint64_t P99 = 0;
    HistogramSnapshot Snap;

    friend bool operator==(const HistogramEntry &,
                           const HistogramEntry &) = default;
  };
  std::vector<HistogramEntry> Histograms;

  void serialize(raw_ostream &OS) const;
  std::string serializeToString() const;
  bool parse(std::string_view Line, std::string *Err = nullptr);

  friend bool operator==(const ServiceStatusReply &,
                         const ServiceStatusReply &) = default;
};

} // namespace mc

#endif // MC_SERVICE_PROTOCOL_H
