//===- service/Protocol.cpp - xgccd wire schema ------------------------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "report/ReportManager.h" // writeJsonString
#include "support/Hash.h"
#include "support/RawOstream.h"

using namespace mc;

const char *mc::serviceStatusName(ServiceStatus S) {
  switch (S) {
  case ServiceStatus::Ok:
    return "ok";
  case ServiceStatus::Incomplete:
    return "incomplete";
  case ServiceStatus::Overloaded:
    return "overloaded";
  case ServiceStatus::Retriable:
    return "retriable";
  case ServiceStatus::Error:
    return "error";
  }
  return "error";
}

bool mc::parseServiceStatus(std::string_view Spelling, ServiceStatus &Out) {
  if (Spelling == "ok")
    Out = ServiceStatus::Ok;
  else if (Spelling == "incomplete")
    Out = ServiceStatus::Incomplete;
  else if (Spelling == "overloaded")
    Out = ServiceStatus::Overloaded;
  else if (Spelling == "retriable")
    Out = ServiceStatus::Retriable;
  else if (Spelling == "error")
    Out = ServiceStatus::Error;
  else
    return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

namespace {

void writeStringArray(raw_ostream &OS, const char *Key,
                      const std::vector<std::string> &Items) {
  OS << ", \"" << Key << "\": [";
  for (size_t I = 0; I != Items.size(); ++I) {
    if (I)
      OS << ", ";
    writeJsonString(OS, Items[I]);
  }
  OS << ']';
}

void writePairArray(raw_ostream &OS, const char *Key, const char *AKey,
                    const char *BKey,
                    const std::vector<std::pair<std::string, std::string>> &P) {
  OS << ", \"" << Key << "\": [";
  for (size_t I = 0; I != P.size(); ++I) {
    OS << (I ? ", {" : "{") << '"' << AKey << "\": ";
    writeJsonString(OS, P[I].first);
    OS << ", \"" << BKey << "\": ";
    writeJsonString(OS, P[I].second);
    OS << '}';
  }
  OS << ']';
}

const char *jsonBool(bool B) { return B ? "true" : "false"; }

} // namespace

void ServiceRequest::serialize(raw_ostream &OS) const {
  // Canonical form: every field, fixed order — serialize∘parse∘serialize is
  // the identity, so fingerprint() is well-defined across processes.
  OS << "{\"schema\": \"" << kServiceRequestSchema << "\", \"id\": ";
  writeJsonString(OS, Id);
  writeStringArray(OS, "files", Files);
  writeStringArray(OS, "checkers", Checkers);
  writePairArray(OS, "metal", "name", "source", Metal);
  writeStringArray(OS, "include_dirs", IncludeDirs);
  writePairArray(OS, "defines", "name", "value", Defines);
  OS << ", \"jobs\": " << Jobs;
  OS << ", \"deadline_ms\": " << DeadlineMs;
  OS << ", \"rank\": ";
  writeJsonString(OS, Rank);
  OS << ", \"format\": ";
  writeJsonString(OS, Format);
  OS << ", \"explain_top_n\": " << ExplainTopN;
  OS << ", \"keep_going\": " << jsonBool(KeepGoing);
  OS << ", \"baseline\": ";
  writeJsonString(OS, Baseline);
  OS << ", \"suppress_known\": " << jsonBool(SuppressKnown);
  OS << ", \"options\": {\"block_cache\": " << jsonBool(Options.BlockCache)
     << ", \"function_summaries\": " << jsonBool(Options.FunctionSummaries)
     << ", \"false_path_pruning\": " << jsonBool(Options.FalsePathPruning)
     << ", \"dispatch_index\": " << jsonBool(Options.DispatchIndex)
     << ", \"state_interning\": " << jsonBool(Options.StateInterning)
     << ", \"interprocedural\": " << jsonBool(Options.Interprocedural)
     << ", \"root_deadline_ms\": " << Options.RootDeadlineMs
     << ", \"root_path_budget\": " << Options.RootPathBudget
     << ", \"max_active_states\": " << Options.MaxActiveStates
     << ", \"fail_on\": ";
  writeJsonString(OS, Options.FailOn);
  OS << "}, \"inject\": {\"slow_ms\": " << InjectKnobs.SlowMs
     << ", \"die\": " << jsonBool(InjectKnobs.Die)
     << ", \"poison_checker\": " << jsonBool(InjectKnobs.PoisonChecker)
     << "}}";
}

std::string ServiceRequest::serializeToString() const {
  std::string Buf;
  raw_string_ostream OS(Buf);
  serialize(OS);
  OS.flush();
  return Buf;
}

uint64_t ServiceRequest::fingerprint() const {
  ServiceRequest Anon = *this;
  Anon.Id.clear();
  return fnv1a64(Anon.serializeToString());
}

void ServiceResponse::serialize(raw_ostream &OS) const {
  OS << "{\"schema\": \"" << kServiceResponseSchema << "\", \"id\": ";
  writeJsonString(OS, Id);
  OS << ", \"status\": \"" << serviceStatusName(Status) << '"';
  OS << ", \"exit_code\": " << ExitCode;
  OS << ", \"queue_ms\": " << QueueMs;
  OS << ", \"run_ms\": " << RunMs;
  OS << ", \"error\": ";
  writeJsonString(OS, Error);
  OS << ", \"output\": ";
  writeJsonString(OS, Output);
  OS << ", \"log\": ";
  writeJsonString(OS, Log);
  OS << ", \"manifest\": ";
  writeJsonString(OS, Manifest);
  OS << '}';
}

std::string ServiceResponse::serializeToString() const {
  std::string Buf;
  raw_string_ostream OS(Buf);
  serialize(OS);
  OS.flush();
  return Buf;
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

namespace {

/// The same strict-subset recursive-descent shape as the manifest reader —
/// objects, arrays, strings, unsigned integers, booleans; unknown keys skip.
struct LineParser {
  std::string_view Text;
  size_t Pos = 0;
  std::string *Err;

  LineParser(std::string_view T, std::string *E) : Text(T), Err(E) {}

  bool fail(const char *Why) {
    if (Err && Err->empty())
      *Err = Why;
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool expect(char C) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail("unexpected character");
    ++Pos;
    return true;
  }

  bool peekIs(char C) {
    skipWs();
    return Pos < Text.size() && Text[Pos] == C;
  }

  bool parseString(std::string &Out) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned V = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= H - '0';
          else if (H >= 'a' && H <= 'f')
            V |= H - 'a' + 10;
          else if (H >= 'A' && H <= 'F')
            V |= H - 'A' + 10;
          else
            return fail("bad \\u escape");
        }
        // The writer only emits \u00XX for control bytes.
        Out += (char)(V & 0xff);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    if (Pos >= Text.size())
      return fail("unterminated string");
    ++Pos;
    return true;
  }

  bool parseUInt(uint64_t &Out) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
      return fail("expected number");
    Out = 0;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      Out = Out * 10 + (Text[Pos++] - '0');
    return true;
  }

  bool parseBool(bool &Out) {
    skipWs();
    if (Text.substr(Pos, 4) == "true") {
      Pos += 4;
      Out = true;
      return true;
    }
    if (Text.substr(Pos, 5) == "false") {
      Pos += 5;
      Out = false;
      return true;
    }
    return fail("expected boolean");
  }

  bool skipValue() {
    skipWs();
    if (Pos >= Text.size())
      return fail("expected value");
    char C = Text[Pos];
    if (C == '"') {
      std::string Tmp;
      return parseString(Tmp);
    }
    if (C == '{')
      return parseObject([&](const std::string &) { return skipValue(); });
    if (C == '[')
      return parseArray([&] { return skipValue(); });
    if (C == 't' || C == 'f') {
      bool B;
      return parseBool(B);
    }
    uint64_t N;
    return parseUInt(N);
  }

  /// {"key": value, ...} — \p OnKey consumes each value.
  template <typename Fn> bool parseObject(Fn &&OnKey) {
    if (!expect('{'))
      return false;
    if (peekIs('}')) {
      ++Pos;
      return true;
    }
    for (;;) {
      std::string Key;
      if (!parseString(Key) || !expect(':'))
        return false;
      if (!OnKey(Key))
        return false;
      skipWs();
      if (peekIs(',')) {
        ++Pos;
        continue;
      }
      return expect('}');
    }
  }

  /// [value, ...] — \p OnItem consumes each element.
  template <typename Fn> bool parseArray(Fn &&OnItem) {
    if (!expect('['))
      return false;
    if (peekIs(']')) {
      ++Pos;
      return true;
    }
    for (;;) {
      if (!OnItem())
        return false;
      skipWs();
      if (peekIs(',')) {
        ++Pos;
        continue;
      }
      return expect(']');
    }
  }

  bool parseStringArray(std::vector<std::string> &Out) {
    Out.clear();
    return parseArray([&] {
      std::string S;
      if (!parseString(S))
        return false;
      Out.push_back(std::move(S));
      return true;
    });
  }

  bool parsePairArray(const char *AKey, const char *BKey,
                      std::vector<std::pair<std::string, std::string>> &Out) {
    Out.clear();
    return parseArray([&] {
      std::pair<std::string, std::string> P;
      if (!parseObject([&](const std::string &Key) {
            if (Key == AKey)
              return parseString(P.first);
            if (Key == BKey)
              return parseString(P.second);
            return skipValue();
          }))
        return false;
      Out.push_back(std::move(P));
      return true;
    });
  }

  bool atEnd() {
    skipWs();
    return Pos == Text.size();
  }
};

} // namespace

bool ServiceRequest::parse(std::string_view Line, std::string *Err) {
  if (Err)
    Err->clear();
  LineParser P(Line, Err);
  ServiceRequest R;
  std::string Schema;
  bool Ok = P.parseObject([&](const std::string &Key) -> bool {
    if (Key == "schema")
      return P.parseString(Schema);
    if (Key == "id")
      return P.parseString(R.Id);
    if (Key == "files")
      return P.parseStringArray(R.Files);
    if (Key == "checkers")
      return P.parseStringArray(R.Checkers);
    if (Key == "metal")
      return P.parsePairArray("name", "source", R.Metal);
    if (Key == "include_dirs")
      return P.parseStringArray(R.IncludeDirs);
    if (Key == "defines")
      return P.parsePairArray("name", "value", R.Defines);
    if (Key == "jobs") {
      uint64_t N;
      if (!P.parseUInt(N))
        return false;
      R.Jobs = unsigned(N);
      return true;
    }
    if (Key == "deadline_ms")
      return P.parseUInt(R.DeadlineMs);
    if (Key == "rank")
      return P.parseString(R.Rank);
    if (Key == "format")
      return P.parseString(R.Format);
    if (Key == "explain_top_n") {
      uint64_t N;
      if (!P.parseUInt(N))
        return false;
      R.ExplainTopN = unsigned(N);
      return true;
    }
    if (Key == "keep_going")
      return P.parseBool(R.KeepGoing);
    if (Key == "baseline")
      return P.parseString(R.Baseline);
    if (Key == "suppress_known")
      return P.parseBool(R.SuppressKnown);
    if (Key == "options")
      return P.parseObject([&](const std::string &K) -> bool {
        if (K == "block_cache")
          return P.parseBool(R.Options.BlockCache);
        if (K == "function_summaries")
          return P.parseBool(R.Options.FunctionSummaries);
        if (K == "false_path_pruning")
          return P.parseBool(R.Options.FalsePathPruning);
        if (K == "dispatch_index")
          return P.parseBool(R.Options.DispatchIndex);
        if (K == "state_interning")
          return P.parseBool(R.Options.StateInterning);
        if (K == "interprocedural")
          return P.parseBool(R.Options.Interprocedural);
        if (K == "root_deadline_ms")
          return P.parseUInt(R.Options.RootDeadlineMs);
        if (K == "root_path_budget")
          return P.parseUInt(R.Options.RootPathBudget);
        if (K == "max_active_states")
          return P.parseUInt(R.Options.MaxActiveStates);
        if (K == "fail_on")
          return P.parseString(R.Options.FailOn);
        return P.skipValue();
      });
    if (Key == "inject")
      return P.parseObject([&](const std::string &K) -> bool {
        if (K == "slow_ms")
          return P.parseUInt(R.InjectKnobs.SlowMs);
        if (K == "die")
          return P.parseBool(R.InjectKnobs.Die);
        if (K == "poison_checker")
          return P.parseBool(R.InjectKnobs.PoisonChecker);
        return P.skipValue();
      });
    return P.skipValue();
  });
  if (!Ok)
    return false;
  if (!P.atEnd())
    return P.fail("trailing bytes after request");
  if (Schema != kServiceRequestSchema)
    return P.fail("not an mc.service-request.v1 line");
  *this = std::move(R);
  return true;
}

std::string mc::peekServiceSchema(std::string_view Line) {
  LineParser P(Line, nullptr);
  std::string Schema;
  P.parseObject([&](const std::string &Key) {
    if (Key == "schema")
      return P.parseString(Schema);
    return P.skipValue();
  });
  return Schema; // Whatever was seen before any malformed tail.
}

//===----------------------------------------------------------------------===//
// Status RPC
//===----------------------------------------------------------------------===//

void ServiceStatusRequest::serialize(raw_ostream &OS) const {
  OS << "{\"schema\": \"" << kServiceStatusRequestSchema << "\", \"id\": ";
  writeJsonString(OS, Id);
  OS << '}';
}

std::string ServiceStatusRequest::serializeToString() const {
  std::string Buf;
  raw_string_ostream OS(Buf);
  serialize(OS);
  OS.flush();
  return Buf;
}

bool ServiceStatusRequest::parse(std::string_view Line, std::string *Err) {
  if (Err)
    Err->clear();
  LineParser P(Line, Err);
  ServiceStatusRequest R;
  std::string Schema;
  bool Ok = P.parseObject([&](const std::string &Key) -> bool {
    if (Key == "schema")
      return P.parseString(Schema);
    if (Key == "id")
      return P.parseString(R.Id);
    return P.skipValue();
  });
  if (!Ok)
    return false;
  if (!P.atEnd())
    return P.fail("trailing bytes after status request");
  if (Schema != kServiceStatusRequestSchema)
    return P.fail("not an mc.service-status.v1 line");
  *this = std::move(R);
  return true;
}

void ServiceStatusReply::serialize(raw_ostream &OS) const {
  OS << "{\"schema\": \"" << kServiceStatusReplySchema << "\", \"id\": ";
  writeJsonString(OS, Id);
  OS << ", \"uptime_ms\": " << UptimeMs;
  OS << ", \"requests\": {\"ok\": " << Ok << ", \"incomplete\": " << Incomplete
     << ", \"overloaded\": " << Overloaded << ", \"retriable\": " << Retriable
     << ", \"error\": " << Error << ", \"total\": " << Total << '}';
  OS << ", \"peak_queue_depth\": " << PeakQueueDepth;
  OS << ", \"quarantine\": [";
  for (size_t I = 0; I != Quarantine.size(); ++I) {
    OS << (I ? ", {" : "{") << "\"checker\": ";
    writeJsonString(OS, Quarantine[I].Checker);
    OS << ", \"remaining\": " << Quarantine[I].Remaining
       << ", \"faults\": " << Quarantine[I].Faults << '}';
  }
  OS << ']';
  writeStringArray(OS, "baselines", Baselines);
  OS << ", \"cache\": [";
  for (size_t I = 0; I != CacheCounters.size(); ++I) {
    OS << (I ? ", {" : "{") << "\"name\": ";
    writeJsonString(OS, CacheCounters[I].first);
    OS << ", \"value\": " << CacheCounters[I].second << '}';
  }
  OS << ']';
  OS << ", \"histograms\": [";
  for (size_t I = 0; I != Histograms.size(); ++I) {
    const HistogramEntry &H = Histograms[I];
    OS << (I ? ", {" : "{") << "\"name\": ";
    writeJsonString(OS, H.Name);
    OS << ", \"p50\": " << H.P50 << ", \"p95\": " << H.P95
       << ", \"p99\": " << H.P99 << ", \"data\": ";
    H.Snap.writeJson(OS);
    OS << '}';
  }
  OS << "]}";
}

std::string ServiceStatusReply::serializeToString() const {
  std::string Buf;
  raw_string_ostream OS(Buf);
  serialize(OS);
  OS.flush();
  return Buf;
}

bool ServiceResponse::parse(std::string_view Line, std::string *Err) {
  if (Err)
    Err->clear();
  LineParser P(Line, Err);
  ServiceResponse R;
  std::string Schema;
  bool Ok = P.parseObject([&](const std::string &Key) -> bool {
    if (Key == "schema")
      return P.parseString(Schema);
    if (Key == "id")
      return P.parseString(R.Id);
    if (Key == "status") {
      std::string S;
      if (!P.parseString(S))
        return false;
      return parseServiceStatus(S, R.Status) || P.fail("unknown status");
    }
    if (Key == "exit_code") {
      uint64_t N;
      if (!P.parseUInt(N))
        return false;
      R.ExitCode = unsigned(N);
      return true;
    }
    if (Key == "queue_ms")
      return P.parseUInt(R.QueueMs);
    if (Key == "run_ms")
      return P.parseUInt(R.RunMs);
    if (Key == "error")
      return P.parseString(R.Error);
    if (Key == "output")
      return P.parseString(R.Output);
    if (Key == "log")
      return P.parseString(R.Log);
    if (Key == "manifest")
      return P.parseString(R.Manifest);
    return P.skipValue();
  });
  if (!Ok)
    return false;
  if (!P.atEnd())
    return P.fail("trailing bytes after response");
  if (Schema != kServiceResponseSchema)
    return P.fail("not an mc.service-response.v1 line");
  *this = std::move(R);
  return true;
}

bool ServiceStatusReply::parse(std::string_view Line, std::string *Err) {
  if (Err)
    Err->clear();
  LineParser P(Line, Err);
  ServiceStatusReply R;
  std::string Schema;

  auto ParseHistData = [&](HistogramSnapshot &Snap) {
    return P.parseObject([&](const std::string &K) -> bool {
      if (K == "sum")
        return P.parseUInt(Snap.Sum);
      if (K == "buckets")
        return P.parseArray([&] {
          uint64_t B = 0, N = 0;
          if (!P.parseObject([&](const std::string &BK) -> bool {
                if (BK == "b")
                  return P.parseUInt(B);
                if (BK == "n")
                  return P.parseUInt(N);
                return P.skipValue();
              }))
            return false;
          if (B >= HistogramSnapshot::kBuckets)
            return P.fail("bucket index out of range");
          Snap.Buckets[B] = N;
          return true;
        });
      // "count" is derived from the buckets; skip it (and unknowns).
      return P.skipValue();
    });
  };

  bool Ok = P.parseObject([&](const std::string &Key) -> bool {
    if (Key == "schema")
      return P.parseString(Schema);
    if (Key == "id")
      return P.parseString(R.Id);
    if (Key == "uptime_ms")
      return P.parseUInt(R.UptimeMs);
    if (Key == "requests")
      return P.parseObject([&](const std::string &K) -> bool {
        if (K == "ok")
          return P.parseUInt(R.Ok);
        if (K == "incomplete")
          return P.parseUInt(R.Incomplete);
        if (K == "overloaded")
          return P.parseUInt(R.Overloaded);
        if (K == "retriable")
          return P.parseUInt(R.Retriable);
        if (K == "error")
          return P.parseUInt(R.Error);
        if (K == "total")
          return P.parseUInt(R.Total);
        return P.skipValue();
      });
    if (Key == "peak_queue_depth")
      return P.parseUInt(R.PeakQueueDepth);
    if (Key == "quarantine")
      return P.parseArray([&] {
        QuarantineEntry E;
        if (!P.parseObject([&](const std::string &K) -> bool {
              if (K == "checker")
                return P.parseString(E.Checker);
              if (K == "remaining")
                return P.parseUInt(E.Remaining);
              if (K == "faults")
                return P.parseUInt(E.Faults);
              return P.skipValue();
            }))
          return false;
        R.Quarantine.push_back(std::move(E));
        return true;
      });
    if (Key == "baselines")
      return P.parseStringArray(R.Baselines);
    if (Key == "cache")
      return P.parseArray([&] {
        std::pair<std::string, uint64_t> C;
        if (!P.parseObject([&](const std::string &K) -> bool {
              if (K == "name")
                return P.parseString(C.first);
              if (K == "value")
                return P.parseUInt(C.second);
              return P.skipValue();
            }))
          return false;
        R.CacheCounters.push_back(std::move(C));
        return true;
      });
    if (Key == "histograms")
      return P.parseArray([&] {
        HistogramEntry H;
        if (!P.parseObject([&](const std::string &K) -> bool {
              if (K == "name")
                return P.parseString(H.Name);
              if (K == "p50")
                return P.parseUInt(H.P50);
              if (K == "p95")
                return P.parseUInt(H.P95);
              if (K == "p99")
                return P.parseUInt(H.P99);
              if (K == "data")
                return ParseHistData(H.Snap);
              return P.skipValue();
            }))
          return false;
        R.Histograms.push_back(std::move(H));
        return true;
      });
    return P.skipValue();
  });
  if (!Ok)
    return false;
  if (!P.atEnd())
    return P.fail("trailing bytes after status reply");
  if (Schema != kServiceStatusReplySchema)
    return P.fail("not an mc.service-status-reply.v1 line");
  *this = std::move(R);
  return true;
}
