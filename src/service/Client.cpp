//===- service/Client.cpp - xgccd client round-trip -----------------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <cerrno>
#include <cstring>
#include <string_view>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace mc;

bool mc::serviceRoundTrip(const std::string &SocketPath,
                          const std::string &Line, std::string &ReplyOut,
                          std::string *Err) {
  auto Fail = [&](const char *What, int Fd) {
    if (Err)
      *Err = std::string(What) + ": " + std::strerror(errno);
    if (Fd >= 0)
      ::close(Fd);
    return false;
  };

  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "bad socket path '" + SocketPath + "'";
    return false;
  }
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size());

  int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return Fail("socket", -1);
  if (::connect(Fd, (const sockaddr *)&Addr, sizeof(Addr)) != 0)
    return Fail("connect", Fd);

  std::string Out = Line;
  Out += '\n';
  std::string_view Bytes = Out;
  while (!Bytes.empty()) {
    ssize_t N = ::send(Fd, Bytes.data(), Bytes.size(), MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Fail("send", Fd);
    }
    Bytes.remove_prefix(size_t(N));
  }

  ReplyOut.clear();
  for (;;) {
    char Tmp[4096];
    ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Fail("recv", Fd);
    }
    if (N == 0)
      break; // EOF before newline: treat what arrived as the reply.
    ReplyOut.append(Tmp, size_t(N));
    size_t NL = ReplyOut.find('\n');
    if (NL != std::string::npos) {
      ReplyOut.resize(NL);
      ::close(Fd);
      return true;
    }
  }
  ::close(Fd);
  if (ReplyOut.empty()) {
    if (Err)
      *Err = "connection closed without a response";
    return false;
  }
  return true;
}
