//===- service/Client.h - xgccd client round-trip ---------------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of the xgccd wire: connect to a Unix-domain socket, send
/// one request line, read one response line. Used by `xgcc --server`,
/// `xgccd --client`, the service tests and the throughput bench.
///
//===----------------------------------------------------------------------===//

#ifndef MC_SERVICE_CLIENT_H
#define MC_SERVICE_CLIENT_H

#include <string>

namespace mc {

/// Sends \p Line (one request, no trailing newline needed — one is added)
/// to the server at \p SocketPath and reads one newline-terminated reply
/// into \p ReplyOut (newline stripped). False on connect/send/receive
/// failure, with \p Err (when non-null) describing which.
bool serviceRoundTrip(const std::string &SocketPath, const std::string &Line,
                      std::string &ReplyOut, std::string *Err = nullptr);

} // namespace mc

#endif // MC_SERVICE_CLIENT_H
