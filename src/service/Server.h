//===- service/Server.h - The xgccd analysis service ------------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// xgccd: a long-lived analysis server over the warm stores. One process
/// keeps the expensive state resident — the AnalysisCache (AST + summary
/// stores), a shared ThreadPool — and replays `xgcc` runs against it on
/// demand, one `mc.service-request.v1` line in, one `mc.service-response.v1`
/// line out, over a Unix-domain stream socket.
///
/// The robustness contract (docs/SERVICE.md):
///  - Bounded admission: at most MaxQueue requests queued; the next one gets
///    a typed `overloaded` response instead of unbounded latency.
///  - Request deadlines: queue wait + run share one budget; a request whose
///    deadline expired before it started is answered `retriable` without
///    burning analysis time, and the remaining budget clamps the per-root
///    deadline once it runs (the existing degradation ladder takes over
///    from there — deadline pressure degrades, it never corrupts).
///  - Request-level fault boundary: checker faults surface as manifest
///    incidents in the response, exactly as standalone xgcc reports them;
///    the daemon never dies for a checker bug.
///  - Cross-request quarantine: a checker that *faulted* (not merely blew a
///    budget) is excluded from subsequent requests and re-probed after N
///    clean requests, N doubling on every re-fault (exponential backoff).
///  - Graceful drain: SIGTERM/SIGINT stop admission; everything already
///    admitted is answered (still subject to its own deadline), caches are
///    flushed, and the process exits 0.
///  - Crash recovery: a journal entry marks every request from start to
///    finish; a request found still open on restart answers its resend with
///    a diagnosed `retriable` once, so a crash-triggering input cannot
///    crash-loop the daemon silently.
///
/// Determinism: responses embed the exact bytes a standalone run would
/// print. Analysis executes on one executor thread (the shared cache is
/// single-threaded by design); parallelism lives inside the run, on the
/// resident pool, where partitioning is derived from the request's jobs
/// value — so the bytes never depend on the pool's worker count.
///
//===----------------------------------------------------------------------===//

#ifndef MC_SERVICE_SERVER_H
#define MC_SERVICE_SERVER_H

#include "service/Protocol.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mc {

class raw_ostream;

/// Server-side configuration (the xgccd command line).
struct ServiceConfig {
  std::string SocketPath; ///< Unix-domain socket path to bind.
  std::string CacheDir;   ///< Warm-store root; required (also holds journal/).
  unsigned MaxQueue = 16; ///< Admitted-but-unstarted bound; beyond → overloaded.
  unsigned DefaultJobs = 0;       ///< For requests with jobs == 0 (0 = auto).
  uint64_t DefaultDeadlineMs = 0; ///< For requests with deadline_ms == 0
                                  ///< (0 = no deadline).
  uint64_t CacheMaxMB = 0;        ///< Size policy applied at drain (0 = off).
  bool AllowInject = false;       ///< Honor requests' inject block (tests).
  /// First re-probe distance: a faulted checker sits out this many completed
  /// requests; each re-fault doubles the distance up to
  /// QuarantineMaxBackoff.
  unsigned QuarantineCleanRequests = 2;
  unsigned QuarantineMaxBackoff = 64;
  raw_ostream *Log = nullptr; ///< Server log (null = errs()).

  /// --log-file: structured JSONL event log path ("" = off). One
  /// mc.service-event.v1 object per admission/completion/shed/quarantine/
  /// fault/drain, monotonic sequence numbers, size-capped rotation
  /// (docs/OBSERVABILITY.md).
  std::string LogFile;
  uint64_t LogMaxBytes = 0; ///< Event-log rotation cap (0 = 4 MiB default).
  /// --slow-request-ms: a completed request whose queue+run time meets this
  /// threshold is captured by the flight recorder (0 = slow capture off;
  /// `retriable`/`error` terminals are captured regardless).
  uint64_t SlowRequestMs = 0;
  /// --flightrec-max: bounded ring of flight-recorder captures kept under
  /// <cache-dir>/flightrec/ (oldest evicted beyond this).
  unsigned FlightRecMax = 16;
};

/// The cross-request checker quarantine with exponential-backoff re-probe.
/// Pure bookkeeping (no clock, no I/O) so tests can drive it directly.
/// Time is measured in *completed requests*, the only monotonic clock a
/// request stream has.
class QuarantineTable {
public:
  QuarantineTable(unsigned InitialBackoff, unsigned MaxBackoff)
      : Initial(InitialBackoff ? InitialBackoff : 1),
        Max(MaxBackoff ? MaxBackoff : 1) {}

  /// Is \p Checker currently excluded from requests?
  bool blocked(const std::string &Checker) const {
    auto It = Table.find(Checker);
    return It != Table.end() && It->second.Remaining > 0;
  }

  /// How many more completed requests until \p Checker is re-probed
  /// (0 = eligible now or never quarantined).
  unsigned remaining(const std::string &Checker) const {
    auto It = Table.find(Checker);
    return It == Table.end() ? 0 : It->second.Remaining;
  }

  /// \p Checker faulted in the request that just completed: quarantine it
  /// for Initial << (faults-1) requests, capped at Max.
  void noteFault(const std::string &Checker) {
    Entry &E = Table[Checker];
    ++E.Faults;
    unsigned Shift = E.Faults - 1;
    uint64_t Backoff = Shift >= 32 ? Max : uint64_t(Initial) << Shift;
    E.Remaining = unsigned(Backoff > Max ? Max : Backoff);
  }

  /// \p Checker ran clean while on probation (Remaining had reached 0):
  /// absolved — the next fault starts the backoff ladder over.
  void noteCleanProbe(const std::string &Checker) { Table.erase(Checker); }

  /// One request completed: every blocked checker is one request closer to
  /// its re-probe. Call this *before* recording the completed request's own
  /// faults, so a just-quarantined checker serves its full sentence.
  void noteCompletedRequest() {
    for (auto &[Name, E] : Table)
      if (E.Remaining > 0)
        --E.Remaining;
  }

  /// Names currently blocked, sorted (deterministic exclusion lists).
  std::vector<std::string> blockedCheckers() const {
    std::vector<std::string> Out;
    for (const auto &[Name, E] : Table)
      if (E.Remaining > 0)
        Out.push_back(Name);
    return Out;
  }

  /// Is \p Checker on probation (quarantined at some point, sentence served,
  /// awaiting its clean probe)?
  bool onProbation(const std::string &Checker) const {
    auto It = Table.find(Checker);
    return It != Table.end() && It->second.Remaining == 0;
  }

  unsigned faultCount(const std::string &Checker) const {
    auto It = Table.find(Checker);
    return It == Table.end() ? 0 : It->second.Faults;
  }

  /// Every tracked entry — blocked *and* on probation — sorted by checker
  /// name (the status RPC's view of the table).
  struct EntrySnapshot {
    std::string Checker;
    unsigned Remaining;
    unsigned Faults;
  };
  std::vector<EntrySnapshot> snapshotEntries() const {
    std::vector<EntrySnapshot> Out;
    for (const auto &[Name, E] : Table)
      Out.push_back({Name, E.Remaining, E.Faults});
    return Out;
  }

private:
  struct Entry {
    unsigned Faults = 0;    ///< Lifetime fault count (backoff exponent).
    unsigned Remaining = 0; ///< Completed requests left to sit out.
  };
  std::map<std::string, Entry> Table;
  unsigned Initial;
  unsigned Max;
};

/// The crash-recovery journal: one file per in-flight request under
/// `<cache-dir>/journal/req-<fingerprint-hex>.j`, holding the raw request
/// line. begin() writes it, end() unlinks it; a file that survives to the
/// next startup names a request the previous process died inside.
class RequestJournal {
public:
  /// \p CacheDir is the warm-store root; the journal lives beside the
  /// stores so one --cache-dir flag configures both.
  explicit RequestJournal(const std::string &CacheDir);

  /// Marks \p Fp in flight (persists \p RawLine for post-mortems). Best
  /// effort: journal I/O failure degrades crash *diagnosis*, never requests.
  void begin(uint64_t Fp, const std::string &RawLine);
  /// Marks \p Fp completed.
  void end(uint64_t Fp);

  /// Fingerprints left open by a previous process (call once at startup).
  std::set<uint64_t> recoverSuspects() const;
  /// Clears \p Fp's suspicion (the diagnosed `retriable` was delivered).
  void absolve(uint64_t Fp);

  /// The journal file path for \p Fp (exposed for tests).
  std::string pathFor(uint64_t Fp) const;

private:
  std::string Dir; ///< <cache-dir>/journal
};

/// The server. Lifecycle: construct, start() (bind + recover), serve()
/// (blocks until requestStop()), destructor cleans up.
class ServiceServer {
public:
  explicit ServiceServer(const ServiceConfig &Cfg);
  ~ServiceServer();
  ServiceServer(const ServiceServer &) = delete;
  ServiceServer &operator=(const ServiceServer &) = delete;

  /// Opens the cache (hard failure if another process holds its lock),
  /// recovers crash suspects from the journal, binds and listens on the
  /// socket. False (with a diagnostic on the log) on any failure.
  bool start();

  /// Accept/execute loop; returns the process exit code (0 on a clean
  /// drain). Call requestStop() — async-signal-safe — to initiate drain.
  int serve();

  /// Initiates graceful drain: stop admitting, answer everything admitted,
  /// flush the cache, make serve() return. Safe from a signal handler.
  void requestStop();

private:
  struct Impl;
  Impl *M; ///< Pimpl: keeps <sys/socket.h> etc. out of the header.
};

} // namespace mc

#endif // MC_SERVICE_SERVER_H
