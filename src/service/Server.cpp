//===- service/Server.cpp - The xgccd analysis service --------------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "checkers/FaultInjector.h"
#include "driver/Tool.h"
#include "lifecycle/BaselineStore.h"
#include "report/Witness.h"
#include "support/EventLog.h"
#include "support/Histogram.h"
#include "support/RawOstream.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>

#include <cerrno>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace mc;
namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// RequestJournal
//===----------------------------------------------------------------------===//

static std::string hex16(uint64_t V) {
  char Buf[17];
  static const char Digits[] = "0123456789abcdef";
  for (int I = 15; I >= 0; --I) {
    Buf[I] = Digits[V & 0xf];
    V >>= 4;
  }
  Buf[16] = '\0';
  return Buf;
}

RequestJournal::RequestJournal(const std::string &CacheDir)
    : Dir(CacheDir + "/journal") {
  std::error_code EC;
  fs::create_directories(Dir, EC);
}

std::string RequestJournal::pathFor(uint64_t Fp) const {
  return Dir + "/req-" + hex16(Fp) + ".j";
}

void RequestJournal::begin(uint64_t Fp, const std::string &RawLine) {
  // Plain stdio on purpose: the cache's writeFileBytes path carries the
  // FaultInjector's fs knob, and a disk-fault test aimed at the store must
  // not eat the journal entry instead.
  std::FILE *F = std::fopen(pathFor(Fp).c_str(), "wb");
  if (!F)
    return;
  std::fwrite(RawLine.data(), 1, RawLine.size(), F);
  std::fclose(F);
}

void RequestJournal::end(uint64_t Fp) {
  std::error_code EC;
  fs::remove(pathFor(Fp), EC);
}

void RequestJournal::absolve(uint64_t Fp) { end(Fp); }

std::set<uint64_t> RequestJournal::recoverSuspects() const {
  std::set<uint64_t> Out;
  std::error_code EC;
  fs::directory_iterator It(Dir, EC), End;
  for (; !EC && It != End; It.increment(EC)) {
    std::string Name = It->path().filename().string();
    // req-<16 hex>.j
    if (Name.size() != 4 + 16 + 2 || Name.compare(0, 4, "req-") != 0 ||
        Name.compare(20, 2, ".j") != 0)
      continue;
    uint64_t Fp = 0;
    bool Valid = true;
    for (size_t I = 4; I != 20; ++I) {
      char C = Name[I];
      Fp <<= 4;
      if (C >= '0' && C <= '9')
        Fp |= uint64_t(C - '0');
      else if (C >= 'a' && C <= 'f')
        Fp |= uint64_t(C - 'a' + 10);
      else {
        Valid = false;
        break;
      }
    }
    if (Valid)
      Out.insert(Fp);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// ServiceServer
//===----------------------------------------------------------------------===//

namespace {

bool endsWith(const std::string &S, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

/// Plain-stdio whole-file write, like the journal: the FaultInjector's fs
/// knobs aim at the store's write path and must not eat flight-recorder
/// evidence. Best effort — capture I/O failure degrades diagnosis, never
/// requests.
void writeFileStdio(const std::string &Path, std::string_view Bytes) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return;
  std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  std::fclose(F);
}

bool sendAll(int Fd, std::string_view Bytes) {
  while (!Bytes.empty()) {
    ssize_t N = ::send(Fd, Bytes.data(), Bytes.size(), MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Bytes.remove_prefix(size_t(N));
  }
  return true;
}

} // namespace

struct ServiceServer::Impl {
  explicit Impl(const ServiceConfig &C)
      : Cfg(C), Log(C.Log ? *C.Log : errs()), Journal(C.CacheDir),
        Quarantine(C.QuarantineCleanRequests, C.QuarantineMaxBackoff) {}

  ServiceConfig Cfg;
  raw_ostream &Log;

  /// The resident warm state: one cache (and its directory lock), one pool.
  std::unique_ptr<AnalysisCache> Cache;
  std::unique_ptr<ThreadPool> Pool;

  RequestJournal Journal;
  /// Executor-thread-only state (analysis is serialized, so neither needs a
  /// lock): the cross-request quarantine and the crash suspects recovered
  /// from the journal at startup.
  QuarantineTable Quarantine;
  std::set<uint64_t> Suspects;
  /// Resident baseline stores, one per requested directory (executor-thread-
  /// only). Kept warm across requests like the caches; every recordRun still
  /// saves to disk, so standalone triage sees each run as it lands.
  std::map<std::string, std::unique_ptr<BaselineStore>> Baselines;

  int ListenFd = -1;
  int WakeR = -1, WakeW = -1;

  /// One admitted request: the connection thread parks on CV until the
  /// executor fills Resp and flips Done.
  struct Ticket {
    ServiceRequest Req;
    std::string RawLine;
    std::chrono::steady_clock::time_point AdmitTime;
    std::mutex Mu;
    std::condition_variable CV;
    bool Done = false;
    ServiceResponse Resp;
    /// Flight-recorder capture base name ("" = not captured). Set by the
    /// executor before Done flips; the connection thread references it in
    /// the completion event.
    std::string Capture;
  };

  std::mutex QueueMu;
  std::condition_variable QueueCV;
  std::deque<std::shared_ptr<Ticket>> Queue; ///< Guarded by QueueMu.
  bool Draining = false;                     ///< Guarded by QueueMu.

  std::mutex ConnMu;
  std::vector<std::thread> ConnThreads; ///< Guarded by ConnMu.
  std::set<int> ConnFds;                ///< Guarded by ConnMu.

  std::thread Executor;

  //===--------------------------------------------------------------------===//
  // Operational telemetry (docs/OBSERVABILITY.md)
  //===--------------------------------------------------------------------===//

  std::chrono::steady_clock::time_point StartTime;

  /// Requests answered, indexed by ServiceStatus. Bumped on connection
  /// threads as each response leaves dispatchLine; read by the status RPC.
  std::atomic<uint64_t> StatusCounts[5] = {};
  /// High-water mark of the admission queue depth.
  std::atomic<uint64_t> PeakQueue{0};

  /// The latency histograms: service.{queue_ms,run_ms,e2e_ms}.<status>.
  /// Lock-free recording from connection threads; every request records
  /// into all three families, so each family's totals equal requests served.
  HistogramRegistry Hist;

  /// The structured event log (--log-file; disabled emit() is a no-op).
  EventLog Events;

  /// Flight recorder state (<cache-dir>/flightrec). CaptureSeq is
  /// executor-thread-only, like the rest of the analysis state.
  std::string FlightDir;
  uint64_t CaptureSeq = 0;

  /// Executor state published for the status RPC, which runs on connection
  /// threads and must not touch executor-owned structures. The executor
  /// refreshes this after every processed ticket.
  std::mutex PubMu;
  std::vector<ServiceStatusReply::QuarantineEntry> PubQuarantine;
  std::vector<std::string> PubBaselines;
  MetricsSnapshot PubTotals; ///< Cumulative per-request metrics (cache.* etc).

  bool start();
  int serve();
  void handleConnection(int Fd);
  ServiceResponse dispatchLine(const std::string &Line);
  ServiceResponse admitAndRun(const std::string &Line, std::string &CaptureRef,
                              bool &Shed);
  std::string handleStatus(const std::string &Line);
  void executorLoop();
  void processTicket(Ticket &T);
  void runTicket(Ticket &T, TraceCollector &TC);
  void maybeCapture(Ticket &T, TraceCollector &TC);
  void pruneFlightRec();
  void publishExecutorState();
  uint64_t uptimeMs() const {
    using namespace std::chrono;
    uint64_t Up = uint64_t(
        duration_cast<milliseconds>(steady_clock::now() - StartTime).count());
    return Up ? Up : 1; // A live daemon has nonzero uptime, by fiat.
  }
  void execute(const ServiceRequest &Req, ServiceResponse &Resp,
               uint64_t RemainingMs, std::vector<std::string> &Faulted,
               std::vector<std::string> &Probed, TraceCollector *TC);
};

bool ServiceServer::Impl::start() {
  StartTime = std::chrono::steady_clock::now();
  if (Cfg.CacheDir.empty()) {
    Log << "xgccd: --cache-dir is required (the warm stores are the point)\n";
    return false;
  }
  if (!Cfg.LogFile.empty()) {
    std::string Err;
    if (!Events.open(Cfg.LogFile, Cfg.LogMaxBytes, &Err)) {
      Log << "xgccd: cannot open --log-file '" << Cfg.LogFile << "': " << Err
          << '\n';
      return false;
    }
  }
  Cache = std::make_unique<AnalysisCache>(Cfg.CacheDir);
  if (!Cache->usable()) {
    if (Cache->lockConflict())
      Log << "xgccd: cache directory '" << Cfg.CacheDir
          << "' is locked by process " << Cache->lockHolderPid()
          << "; refusing to start\n";
    else
      Log << "xgccd: cannot open cache directory '" << Cfg.CacheDir << "'\n";
    return false;
  }

  Suspects = Journal.recoverSuspects();
  if (!Suspects.empty())
    Log << "xgccd: " << Suspects.size()
        << " request(s) found mid-flight in the journal — the previous "
           "process died inside them; their resends will be answered "
           "retriable once\n";

  // The flight-recorder ring lives beside the stores; captures from an
  // earlier life keep their slots, so the sequence resumes past them.
  FlightDir = Cfg.CacheDir + "/flightrec";
  {
    std::error_code EC;
    fs::create_directories(FlightDir, EC);
    fs::directory_iterator It(FlightDir, EC), End;
    for (; !EC && It != End; It.increment(EC)) {
      std::string Name = It->path().filename().string();
      // cap-<6 digits>-...
      if (Name.size() < 10 || Name.compare(0, 4, "cap-") != 0)
        continue;
      uint64_t Seq = 0;
      bool Valid = true;
      for (size_t I = 4; I != 10; ++I) {
        if (Name[I] < '0' || Name[I] > '9') {
          Valid = false;
          break;
        }
        Seq = Seq * 10 + uint64_t(Name[I] - '0');
      }
      if (Valid && Seq > CaptureSeq)
        CaptureSeq = Seq;
    }
  }

  Pool = std::make_unique<ThreadPool>(0);

  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  if (Cfg.SocketPath.empty() ||
      Cfg.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Log << "xgccd: bad socket path '" << Cfg.SocketPath << "'\n";
    return false;
  }
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Cfg.SocketPath.c_str(), Cfg.SocketPath.size());

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (ListenFd < 0) {
    Log << "xgccd: socket: " << std::strerror(errno) << '\n';
    return false;
  }
  // The cache lock (held above) already guarantees we are the only daemon on
  // this store, so a leftover socket file is stale by construction.
  ::unlink(Cfg.SocketPath.c_str());
  if (::bind(ListenFd, (const sockaddr *)&Addr, sizeof(Addr)) != 0 ||
      ::listen(ListenFd, 64) != 0) {
    Log << "xgccd: cannot listen on '" << Cfg.SocketPath
        << "': " << std::strerror(errno) << '\n';
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }

  int Pipe[2];
  if (::pipe2(Pipe, O_CLOEXEC) != 0) {
    Log << "xgccd: pipe2: " << std::strerror(errno) << '\n';
    return false;
  }
  WakeR = Pipe[0];
  WakeW = Pipe[1];

  Log << "xgccd: listening on " << Cfg.SocketPath << " (cache "
      << Cfg.CacheDir << ", max queue " << Cfg.MaxQueue << ")\n";
  Events.emit(ServiceEvent("start")
                  .str("socket", Cfg.SocketPath)
                  .str("cache_dir", Cfg.CacheDir)
                  .num("pid", uint64_t(::getpid()))
                  .num("max_queue", Cfg.MaxQueue)
                  .num("slow_request_ms", Cfg.SlowRequestMs));
  return true;
}

int ServiceServer::Impl::serve() {
  Executor = std::thread([this] { executorLoop(); });

  for (;;) {
    pollfd P[2] = {{ListenFd, POLLIN, 0}, {WakeR, POLLIN, 0}};
    int R = ::poll(P, 2, -1);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      Log << "xgccd: poll: " << std::strerror(errno) << '\n';
      break;
    }
    if (P[1].revents)
      break; // requestStop(): begin the drain.
    if (P[0].revents & (POLLERR | POLLHUP))
      break;
    if (P[0].revents & POLLIN) {
      int Fd = ::accept4(ListenFd, nullptr, nullptr, SOCK_CLOEXEC);
      if (Fd < 0)
        continue;
      std::lock_guard<std::mutex> L(ConnMu);
      ConnFds.insert(Fd);
      ConnThreads.emplace_back([this, Fd] { handleConnection(Fd); });
    }
  }

  // Drain, in dependency order: (1) stop admission — close the listen
  // socket and flip Draining so in-flight connections get `retriable`;
  // (2) let the executor answer everything already admitted; (3) unblock
  // idle readers and join the connection threads; (4) flush the stores.
  Log << "xgccd: draining\n";
  {
    std::lock_guard<std::mutex> L(QueueMu);
    Draining = true;
  }
  QueueCV.notify_all();
  ::close(ListenFd);
  ListenFd = -1;

  Executor.join();

  {
    std::lock_guard<std::mutex> L(ConnMu);
    // SHUT_RD, not RDWR: unblock idle readers parked in recv() while letting
    // a thread that just got its ticket answered finish *writing* the
    // response — a drain must never eat an answered request's bytes.
    for (int Fd : ConnFds)
      ::shutdown(Fd, SHUT_RD);
  }
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> L(ConnMu);
    Threads.swap(ConnThreads);
  }
  for (std::thread &T : Threads)
    T.join();

  if (Cfg.CacheMaxMB)
    Cache->evictToLimit(Cfg.CacheMaxMB * 1024ull * 1024ull);
  Cache.reset(); // Releases the directory lock.
  ::unlink(Cfg.SocketPath.c_str());

  // The drain summary: one final structured event (and a human line) with
  // the whole life's ledger — uptime, requests by status, peak queue depth.
  uint64_t Ok = StatusCounts[size_t(ServiceStatus::Ok)].load();
  uint64_t Inc = StatusCounts[size_t(ServiceStatus::Incomplete)].load();
  uint64_t Over = StatusCounts[size_t(ServiceStatus::Overloaded)].load();
  uint64_t Retry = StatusCounts[size_t(ServiceStatus::Retriable)].load();
  uint64_t Err = StatusCounts[size_t(ServiceStatus::Error)].load();
  uint64_t Total = Ok + Inc + Over + Retry + Err;
  Log << "xgccd: served " << Total << " request(s) (" << Ok << " ok, " << Inc
      << " incomplete, " << Over << " overloaded, " << Retry << " retriable, "
      << Err << " error), peak queue depth " << PeakQueue.load() << '\n';
  Events.emit(ServiceEvent("drain")
                  .num("uptime_ms", uptimeMs())
                  .num("ok", Ok)
                  .num("incomplete", Inc)
                  .num("overloaded", Over)
                  .num("retriable", Retry)
                  .num("error", Err)
                  .num("total", Total)
                  .num("peak_queue_depth", PeakQueue.load()));
  Events.close();
  Log << "xgccd: drained cleanly\n";
  return 0;
}

void ServiceServer::Impl::handleConnection(int Fd) {
  std::string Buf;
  bool Open = true;
  while (Open) {
    size_t NL;
    while ((NL = Buf.find('\n')) == std::string::npos) {
      char Tmp[4096];
      ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
      if (N <= 0) {
        Open = false;
        break;
      }
      Buf.append(Tmp, size_t(N));
    }
    if (!Open)
      break;
    std::string Line = Buf.substr(0, NL);
    Buf.erase(0, NL + 1);
    if (Line.empty())
      continue;
    // Status queries are answered right here on the connection thread —
    // never through the worker queue — so a saturated (or wedged) executor
    // cannot make the daemon unobservable.
    std::string Out;
    if (peekServiceSchema(Line) == kServiceStatusRequestSchema)
      Out = handleStatus(Line);
    else
      Out = dispatchLine(Line).serializeToString();
    Out += '\n';
    if (!sendAll(Fd, Out))
      break;
  }
  std::lock_guard<std::mutex> L(ConnMu);
  ConnFds.erase(Fd);
  ::close(Fd);
}

ServiceResponse ServiceServer::Impl::dispatchLine(const std::string &Line) {
  using namespace std::chrono;
  auto Entry = steady_clock::now();
  std::string CaptureRef;
  bool Shed = false;
  ServiceResponse Resp = admitAndRun(Line, CaptureRef, Shed);
  uint64_t E2eMs = uint64_t(
      duration_cast<milliseconds>(steady_clock::now() - Entry).count());

  // Every terminal response records into all three latency families, tagged
  // by status — so each family's totals equal requests served, and shed
  // traffic is visible in the distributions, not just the counters.
  const char *St = serviceStatusName(Resp.Status);
  Hist.record(std::string("service.queue_ms.") + St, Resp.QueueMs);
  Hist.record(std::string("service.run_ms.") + St, Resp.RunMs);
  Hist.record(std::string("service.e2e_ms.") + St, E2eMs);
  StatusCounts[size_t(Resp.Status)].fetch_add(1, std::memory_order_relaxed);

  if (!Shed) {
    ServiceEvent E("complete");
    E.str("id", Resp.Id)
        .str("status", St)
        .num("queue_ms", Resp.QueueMs)
        .num("run_ms", Resp.RunMs)
        .num("e2e_ms", E2eMs)
        .num("exit_code", Resp.ExitCode);
    if (!CaptureRef.empty())
      E.str("flightrec", CaptureRef);
    if (!Resp.Error.empty())
      E.str("error", Resp.Error);
    Events.emit(E);
  }
  return Resp;
}

ServiceResponse ServiceServer::Impl::admitAndRun(const std::string &Line,
                                                 std::string &CaptureRef,
                                                 bool &Shed) {
  ServiceResponse Resp;
  std::string Err;
  ServiceRequest Req;
  if (!Req.parse(Line, &Err)) {
    Resp.Status = ServiceStatus::Error;
    Resp.Error = "malformed request: " + Err;
    return Resp;
  }

  auto T = std::make_shared<Ticket>();
  T->Req = std::move(Req);
  T->RawLine = Line;
  T->AdmitTime = std::chrono::steady_clock::now();
  uint64_t Depth = 0;
  {
    std::lock_guard<std::mutex> L(QueueMu);
    if (Draining) {
      Resp.Id = T->Req.Id;
      Resp.Status = ServiceStatus::Retriable;
      Resp.Error = "server is draining";
      Shed = true;
      Events.emit(ServiceEvent("shed")
                      .str("id", Resp.Id)
                      .str("reason", "draining")
                      .num("queue_depth", Queue.size()));
      return Resp;
    }
    if (Queue.size() >= Cfg.MaxQueue) {
      Resp.Id = T->Req.Id;
      Resp.Status = ServiceStatus::Overloaded;
      Resp.Error = "admission queue is full (" +
                   std::to_string(Queue.size()) + " request(s) admitted)";
      Shed = true;
      Events.emit(ServiceEvent("shed")
                      .str("id", Resp.Id)
                      .str("reason", "queue-full")
                      .num("queue_depth", Queue.size()));
      return Resp;
    }
    Queue.push_back(T);
    Depth = Queue.size();
  }
  QueueCV.notify_one();

  // Peak-depth high-water mark (relaxed CAS max; ties/races favor larger).
  uint64_t Cur = PeakQueue.load(std::memory_order_relaxed);
  while (Depth > Cur && !PeakQueue.compare_exchange_weak(
                            Cur, Depth, std::memory_order_relaxed))
    ;
  Events.emit(ServiceEvent("admit")
                  .str("id", T->Req.Id)
                  .num("queue_depth", Depth));

  std::unique_lock<std::mutex> L(T->Mu);
  T->CV.wait(L, [&] { return T->Done; });
  CaptureRef = T->Capture;
  return T->Resp;
}

/// The status RPC: answered right here on the connection thread, never
/// entering the worker queue — a wedged executor cannot make the daemon
/// unobservable. Everything read is either atomic (counts, peak depth,
/// histogram cells) or published under PubMu by the executor.
std::string ServiceServer::Impl::handleStatus(const std::string &Line) {
  ServiceStatusRequest Req;
  std::string Err;
  if (!Req.parse(Line, &Err)) {
    ServiceResponse Resp;
    Resp.Status = ServiceStatus::Error;
    Resp.Error = "malformed status request: " + Err;
    return Resp.serializeToString();
  }

  ServiceStatusReply Reply;
  Reply.Id = Req.Id;
  Reply.UptimeMs = uptimeMs();
  Reply.Ok = StatusCounts[size_t(ServiceStatus::Ok)].load(
      std::memory_order_relaxed);
  Reply.Incomplete = StatusCounts[size_t(ServiceStatus::Incomplete)].load(
      std::memory_order_relaxed);
  Reply.Overloaded = StatusCounts[size_t(ServiceStatus::Overloaded)].load(
      std::memory_order_relaxed);
  Reply.Retriable = StatusCounts[size_t(ServiceStatus::Retriable)].load(
      std::memory_order_relaxed);
  Reply.Error = StatusCounts[size_t(ServiceStatus::Error)].load(
      std::memory_order_relaxed);
  Reply.Total = Reply.Ok + Reply.Incomplete + Reply.Overloaded +
                Reply.Retriable + Reply.Error;
  Reply.PeakQueueDepth = PeakQueue.load(std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> L(PubMu);
    Reply.Quarantine = PubQuarantine;
    Reply.Baselines = PubBaselines;
    for (const auto &[Name, Value] : PubTotals)
      if (Name.compare(0, 6, "cache.") == 0)
        Reply.CacheCounters.emplace_back(Name, Value);
  }

  for (auto &[Name, Snap] : Hist.snapshotAll()) {
    ServiceStatusReply::HistogramEntry E;
    E.Name = Name;
    E.P50 = Snap.percentile(50);
    E.P95 = Snap.percentile(95);
    E.P99 = Snap.percentile(99);
    E.Snap = Snap;
    Reply.Histograms.push_back(std::move(E));
  }
  return Reply.serializeToString();
}

void ServiceServer::Impl::executorLoop() {
  for (;;) {
    std::shared_ptr<Ticket> T;
    {
      std::unique_lock<std::mutex> L(QueueMu);
      QueueCV.wait(L, [&] { return Draining || !Queue.empty(); });
      if (Queue.empty())
        return; // Draining and nothing admitted: done.
      T = Queue.front();
      Queue.pop_front();
    }
    processTicket(*T);
    {
      std::lock_guard<std::mutex> L(T->Mu);
      T->Done = true;
    }
    T->CV.notify_one();
  }
}

void ServiceServer::Impl::processTicket(Ticket &T) {
  // Traces are collected for every daemon run: the tracing contract (PR4)
  // is that collection never changes a report byte, and the collector is
  // cheap until exported — which happens only when the flight recorder
  // decides this request is worth keeping.
  TraceCollector TC(/*Enabled=*/true);
  runTicket(T, TC);
  maybeCapture(T, TC);
  publishExecutorState();
}

void ServiceServer::Impl::runTicket(Ticket &T, TraceCollector &TC) {
  using namespace std::chrono;
  const ServiceRequest &Req = T.Req;
  ServiceResponse &Resp = T.Resp;
  auto Start = steady_clock::now();
  Resp.Id = Req.Id;
  Resp.QueueMs = uint64_t(duration_cast<milliseconds>(Start - T.AdmitTime).count());

  // The deadline covers queue wait + run as one budget. A request that
  // already blew it gets answered without burning any analysis time.
  uint64_t EffDeadlineMs =
      Req.DeadlineMs ? Req.DeadlineMs : Cfg.DefaultDeadlineMs;
  if (EffDeadlineMs && Resp.QueueMs >= EffDeadlineMs) {
    Resp.Status = ServiceStatus::Retriable;
    Resp.Error = "deadline (" + std::to_string(EffDeadlineMs) +
                 " ms) expired while queued";
    return;
  }

  // Crash recovery: if a previous process died while running this exact
  // work (same fingerprint), say so once instead of crash-looping silently.
  uint64_t Fp = Req.fingerprint();
  if (Suspects.count(Fp)) {
    Suspects.erase(Fp);
    Journal.absolve(Fp);
    Resp.Status = ServiceStatus::Retriable;
    Resp.Error = "a previous attempt at this request died mid-flight "
                 "(crash-journal hit); resend to run it again";
    Log << "xgccd: request " << hex16(Fp)
        << " matches a crash-journal suspect; answered retriable\n";
    Events.emit(ServiceEvent("fault")
                    .str("kind", "crash-journal")
                    .str("id", Resp.Id)
                    .str("fingerprint", hex16(Fp)));
    return;
  }

  Journal.begin(Fp, T.RawLine);

  // Service-level fault injection (tests only; requires --allow-inject).
  if (Req.InjectKnobs.SlowMs || Req.InjectKnobs.Die ||
      Req.InjectKnobs.PoisonChecker) {
    if (!Cfg.AllowInject) {
      Log << "xgccd: request " << hex16(Fp)
          << " carries inject knobs; ignored (started without "
             "--allow-inject)\n";
    } else {
      if (Req.InjectKnobs.SlowMs)
        std::this_thread::sleep_for(milliseconds(Req.InjectKnobs.SlowMs));
      if (Req.InjectKnobs.Die)
        ::_exit(86); // Simulated crash: the journal entry stays behind.
    }
  }

  std::vector<std::string> Faulted, Probed;
  uint64_t RemainingMs = EffDeadlineMs ? EffDeadlineMs - Resp.QueueMs : 0;
  execute(Req, Resp, RemainingMs, Faulted, Probed, &TC);

  Journal.end(Fp);
  Resp.RunMs =
      uint64_t(duration_cast<milliseconds>(steady_clock::now() - Start).count());

  // Quarantine bookkeeping, only for requests that actually analyzed.
  // Completed-request time advances first so a checker quarantined *by this
  // request* still serves its full sentence.
  if (Resp.Status == ServiceStatus::Ok ||
      Resp.Status == ServiceStatus::Incomplete) {
    Quarantine.noteCompletedRequest();
    for (const std::string &Name : Probed)
      if (std::find(Faulted.begin(), Faulted.end(), Name) == Faulted.end()) {
        Quarantine.noteCleanProbe(Name);
        Log << "xgccd: checker '" << Name << "' ran clean on probation; "
            << "quarantine lifted\n";
        Events.emit(ServiceEvent("quarantine")
                        .str("action", "lifted")
                        .str("checker", Name)
                        .str("id", Resp.Id));
      }
    for (const std::string &Name : Faulted) {
      Quarantine.noteFault(Name);
      Log << "xgccd: checker '" << Name << "' faulted; quarantined for "
          << Quarantine.remaining(Name) << " request(s)\n";
      Events.emit(ServiceEvent("fault")
                      .str("kind", "checker")
                      .str("checker", Name)
                      .str("id", Resp.Id));
      Events.emit(ServiceEvent("quarantine")
                      .str("action", "imposed")
                      .str("checker", Name)
                      .num("remaining", Quarantine.remaining(Name))
                      .num("faults", Quarantine.faultCount(Name))
                      .str("id", Resp.Id));
    }
  }
}

/// The flight recorder: a completed request that terminated `retriable` or
/// `error`, or whose queue+run time met --slow-request-ms, leaves its
/// evidence under <cache-dir>/flightrec/ — the raw request line, the run
/// manifest, and the execution trace — in a bounded ring of captures.
void ServiceServer::Impl::maybeCapture(Ticket &T, TraceCollector &TC) {
  if (FlightDir.empty())
    return;
  const ServiceResponse &Resp = T.Resp;
  bool Bad = Resp.Status == ServiceStatus::Retriable ||
             Resp.Status == ServiceStatus::Error;
  bool Slow =
      Cfg.SlowRequestMs && Resp.QueueMs + Resp.RunMs >= Cfg.SlowRequestMs;
  if (!Bad && !Slow)
    return;

  char SeqBuf[16];
  std::snprintf(SeqBuf, sizeof(SeqBuf), "%06llu",
                (unsigned long long)++CaptureSeq);
  std::string Base =
      std::string("cap-") + SeqBuf + "-" + hex16(T.Req.fingerprint());
  std::string Stem = FlightDir + "/" + Base;

  // The raw request line is always there; manifest and trace only when the
  // request actually ran (early-return paths have neither).
  writeFileStdio(Stem + ".request.json", T.RawLine + "\n");
  if (!Resp.Manifest.empty())
    writeFileStdio(Stem + ".manifest.json", Resp.Manifest);
  if (TC.eventCount()) {
    std::string TraceBuf;
    raw_string_ostream TOS(TraceBuf);
    TC.exportChromeJson(TOS, /*IncludeTimes=*/true);
    writeFileStdio(Stem + ".trace.json", TraceBuf);
  }

  T.Capture = Base;
  Log << "xgccd: flight recorder captured request " << Resp.Id << " as "
      << Base << " (" << (Bad ? serviceStatusName(Resp.Status) : "slow")
      << ")\n";
  pruneFlightRec();
}

/// Keeps the newest Cfg.FlightRecMax captures: cap-NNNNNN names sort
/// lexicographically by sequence, so pruning is a sorted scan dropping the
/// oldest capture groups (every file sharing a cap-NNNNNN- prefix).
void ServiceServer::Impl::pruneFlightRec() {
  std::set<std::string> Groups;
  std::vector<std::string> Files;
  std::error_code EC;
  fs::directory_iterator It(FlightDir, EC), End;
  for (; !EC && It != End; It.increment(EC)) {
    std::string Name = It->path().filename().string();
    if (Name.size() < 11 || Name.compare(0, 4, "cap-") != 0)
      continue;
    Files.push_back(Name);
    Groups.insert(Name.substr(0, 11)); // "cap-NNNNNN-" → group by sequence.
  }
  if (Groups.size() <= Cfg.FlightRecMax)
    return;
  size_t Drop = Groups.size() - Cfg.FlightRecMax;
  std::set<std::string> Doomed;
  for (const std::string &G : Groups) {
    if (!Drop)
      break;
    Doomed.insert(G);
    --Drop;
  }
  for (const std::string &F : Files)
    if (Doomed.count(F.substr(0, 11)))
      fs::remove(FlightDir + "/" + F, EC);
}

/// Republishes the executor-owned state the status RPC needs — quarantine
/// table, resident baseline directories — so connection threads can answer
/// without touching executor structures. Called after every ticket.
void ServiceServer::Impl::publishExecutorState() {
  std::vector<ServiceStatusReply::QuarantineEntry> Q;
  for (const QuarantineTable::EntrySnapshot &E : Quarantine.snapshotEntries())
    Q.push_back({E.Checker, E.Remaining, E.Faults});
  std::vector<std::string> B;
  for (const auto &[Dir, Store] : Baselines)
    B.push_back(Dir);
  std::lock_guard<std::mutex> L(PubMu);
  PubQuarantine = std::move(Q);
  PubBaselines = std::move(B);
}

void ServiceServer::Impl::execute(const ServiceRequest &Req,
                                  ServiceResponse &Resp, uint64_t RemainingMs,
                                  std::vector<std::string> &Faulted,
                                  std::vector<std::string> &Probed,
                                  TraceCollector *TC) {
  auto Fail = [&](std::string Why) {
    Resp.Status = ServiceStatus::Error;
    Resp.Error = std::move(Why);
    Resp.ExitCode = 2; // What the standalone CLI returns for a usage error.
  };
  if (Req.Files.empty())
    return Fail("no input files");

  RankPolicy Policy;
  if (Req.Rank == "generic")
    Policy = RankPolicy::Generic;
  else if (Req.Rank == "statistical")
    Policy = RankPolicy::Statistical;
  else if (Req.Rank == "combined")
    Policy = RankPolicy::Combined;
  else
    return Fail("unknown rank mode '" + Req.Rank + "'");
  bool Json;
  if (Req.Format == "text")
    Json = false;
  else if (Req.Format == "json")
    Json = true;
  else
    return Fail("unknown format '" + Req.Format + "'");

  EngineOptions Opts;
  Opts.Jobs = Req.Jobs ? Req.Jobs : Cfg.DefaultJobs;
  Opts.EnableBlockCache = Req.Options.BlockCache;
  if (!Req.Options.BlockCache)
    Opts.MaxPathsPerFunction = 1u << 16; // The CLI's --no-cache companion.
  Opts.EnableFunctionSummaries = Req.Options.FunctionSummaries;
  Opts.EnableFalsePathPruning = Req.Options.FalsePathPruning;
  Opts.EnableDispatchIndex = Req.Options.DispatchIndex;
  Opts.EnableStateInterning = Req.Options.StateInterning;
  Opts.Interprocedural = Req.Options.Interprocedural;
  Opts.RootPathBudget = Req.Options.RootPathBudget;
  if (Req.Options.MaxActiveStates)
    Opts.MaxActiveStates = Req.Options.MaxActiveStates;
  Opts.Reporting.RootDeadlineMs = Req.Options.RootDeadlineMs;
  if (!parseFailPolicy(Req.Options.FailOn, Opts.Reporting.FailOn))
    return Fail("unknown fail-on mode '" + Req.Options.FailOn + "'");
  if (Req.ExplainTopN) {
    Opts.Reporting.ExplainTopN = Req.ExplainTopN;
    Opts.Reporting.CaptureWitness = true;
  }
  // Whatever deadline budget the queue left clamps the per-root deadline;
  // from here the engine's degradation ladder enforces it root by root.
  if (RemainingMs &&
      (!Opts.Reporting.RootDeadlineMs ||
       Opts.Reporting.RootDeadlineMs > RemainingMs))
    Opts.Reporting.RootDeadlineMs = RemainingMs;

  std::string LogBuf;
  raw_string_ostream LogOS(LogBuf);
  XgccTool Tool(&LogOS);
  Tool.setSharedCache(Cache.get());
  Tool.setWorkerPool(Pool.get());
  Tool.setTrace(TC);
  Tool.setKeepGoing(Req.KeepGoing);
  for (const std::string &Dir : Req.IncludeDirs)
    Tool.preprocessor().addIncludeDir(Dir);
  for (const auto &[Name, Value] : Req.Defines)
    Tool.preprocessor().define(Name, Value);

  // Checker selection mirrors the CLI: default full builtin suite,
  // path_kill stable-sorted first. The service adds one filter on top —
  // checkers in cross-request quarantine are excluded, with a synthetic
  // incident in the manifest so the exclusion is visible evidence.
  std::vector<std::string> Excluded;
  auto Blocked = [&](const std::string &Name) {
    if (!Quarantine.blocked(Name))
      return false;
    Excluded.push_back(Name);
    LogOS << "xgccd: checker '" << Name << "' is quarantined; re-probe in "
          << Quarantine.remaining(Name) << " request(s)\n";
    return true;
  };
  auto NoteProbe = [&](const std::string &Name) {
    if (Quarantine.onProbation(Name))
      Probed.push_back(Name);
  };

  std::vector<std::string> CheckerNames = Req.Checkers;
  if (CheckerNames.empty() && Req.Metal.empty())
    CheckerNames = builtinCheckerNames();
  std::stable_sort(CheckerNames.begin(), CheckerNames.end(),
                   [](const std::string &A, const std::string &B) {
                     return (A == "path_kill") > (B == "path_kill");
                   });
  for (const std::string &Name : CheckerNames) {
    if (Blocked(Name))
      continue;
    if (!Tool.addBuiltinChecker(Name))
      return Fail("unknown builtin checker '" + Name + "'");
    NoteProbe(Name);
  }
  for (const auto &[Name, Source] : Req.Metal) {
    if (Blocked(Name))
      continue;
    if (!Tool.addMetalChecker(Source, Name))
      return Fail("errors in metal checker '" + Name + "'");
    NoteProbe(Name);
  }
  if (Cfg.AllowInject && Req.InjectKnobs.PoisonChecker) {
    std::string Name = "fault_injector";
    if (!Blocked(Name)) {
      Tool.addChecker(
          std::make_unique<FaultInjectorChecker>(FaultInjectorChecker::Mode::Fault));
      NoteProbe(Name);
    }
  }

  // Pass 1, batched exactly like the CLI (.mast images load serially at
  // their command-line position).
  bool ParseOk = true;
  std::vector<std::string> Batch;
  auto FlushBatch = [&] {
    if (Batch.empty())
      return;
    ParseOk &= Tool.addSourceFiles(Batch, Opts.Jobs);
    Batch.clear();
  };
  for (const std::string &Path : Req.Files) {
    if (endsWith(Path, ".mast")) {
      FlushBatch();
      ParseOk &= Tool.addMastFile(Path);
    } else {
      Batch.push_back(Path);
    }
  }
  FlushBatch();
  if (!ParseOk)
    LogOS << "xgcc: continuing despite parse errors\n";

  Tool.run(Opts);

  // Report-lifecycle classification against the resident baseline store for
  // the requested directory (opened on first use, kept warm after), exactly
  // where the standalone driver does it: before any output is rendered, so
  // the tags and suppressions land in the same bytes.
  BaselineDelta Delta;
  const bool BaselineOn = !Req.Baseline.empty();
  bool BaselineWriteFailed = false;
  if (BaselineOn) {
    std::unique_ptr<BaselineStore> &Store = Baselines[Req.Baseline];
    if (!Store) {
      Store = std::make_unique<BaselineStore>();
      std::string Err;
      if (!Store->open(Req.Baseline, &Err)) {
        Baselines.erase(Req.Baseline);
        return Fail("cannot open baseline store '" + Req.Baseline +
                    "': " + Err);
      }
    }
    Delta = Store->recordRun(Tool.reports(), Req.SuppressKnown);
    std::string Err;
    if (!Store->save(&Err)) {
      LogOS << "xgcc: cannot write baseline store '" << Req.Baseline
            << "': " << Err << '\n';
      BaselineWriteFailed = true;
    }
  }

  // Output assembly: the exact byte sequence a standalone run prints.
  std::string OutBuf;
  raw_string_ostream OutOS(OutBuf);
  if (Json) {
    Tool.reports().printJson(OutOS, Policy);
  } else {
    Tool.reports().print(OutOS, Policy);
    OutOS << Tool.reports().size() << " report(s)\n";
    if (BaselineOn)
      OutOS << "baseline: " << Delta.NewCount << " new, " << Delta.KnownCount
            << " known, " << Delta.FixedCount << " fixed, "
            << Delta.SuppressedCount << " suppressed\n";
    if (Opts.Reporting.ExplainTopN)
      renderExplainText(OutOS, Tool.reports(), Tool.sourceManager(), Policy,
                        Opts.Reporting.ExplainTopN);
  }

  // Fold this request's metrics into the daemon's cumulative totals (the
  // status RPC surfaces the cache.* slice). Tool.metrics() is already the
  // per-request delta against the shared cache's baseline.
  {
    MetricsSnapshot ReqMetrics = Tool.metrics();
    std::lock_guard<std::mutex> PL(PubMu);
    PubTotals.merge(ReqMetrics);
  }

  RunManifest Man = Tool.manifest(Opts, ParseOk);
  if (BaselineOn) {
    Man.Baseline.Enabled = true;
    Man.Baseline.RunOrdinal = Delta.RunOrdinal;
    Man.Baseline.NewCount = Delta.NewCount;
    Man.Baseline.KnownCount = Delta.KnownCount;
    Man.Baseline.FixedCount = Delta.FixedCount;
    Man.Baseline.SuppressedCount = Delta.SuppressedCount;
  }
  // Collect this run's checker faults *before* appending the synthetic
  // exclusion incidents (those carry Fault too, but describe old news).
  for (const RootIncident &Inc : Man.Incidents)
    if (Inc.Fault &&
        std::find(Faulted.begin(), Faulted.end(), Inc.Checker) == Faulted.end())
      Faulted.push_back(Inc.Checker);
  for (const std::string &Name : Excluded) {
    RootIncident Inc;
    Inc.Root = "<service>";
    Inc.Checker = Name;
    Inc.Quarantined = true;
    Inc.Fault = true;
    Inc.Reason = "service quarantine: re-probe after " +
                 std::to_string(Quarantine.remaining(Name)) +
                 " clean request(s)";
    Man.Incidents.push_back(std::move(Inc));
  }

  Resp.Output = std::move(OutBuf);
  {
    raw_string_ostream MOS(Resp.Manifest);
    Man.writeJson(MOS);
  }
  Resp.Log = std::move(LogBuf);
  Resp.Status = (!ParseOk || !Man.Incidents.empty())
                    ? ServiceStatus::Incomplete
                    : ServiceStatus::Ok;

  // The exit code a standalone run would have returned under its --fail-on
  // policy, so `xgcc --server` can just exit with it.
  Resp.ExitCode = 0;
  if (Opts.Reporting.FailOn != FailPolicy::Never) {
    if (Tool.reports().anyQuarantined() || !ParseOk)
      Resp.ExitCode = 1;
    else if (Opts.Reporting.FailOn == FailPolicy::Degraded &&
             Tool.reports().anyDegraded())
      Resp.ExitCode = 1;
  }
  // A run whose classification could not be persisted must not look like it
  // was (mirrors the standalone --baseline write-failure policy).
  if (BaselineWriteFailed)
    Resp.ExitCode = 1;
}

//===----------------------------------------------------------------------===//
// Public surface
//===----------------------------------------------------------------------===//

ServiceServer::ServiceServer(const ServiceConfig &Cfg) : M(new Impl(Cfg)) {}

ServiceServer::~ServiceServer() {
  if (M->ListenFd >= 0)
    ::close(M->ListenFd);
  if (M->WakeR >= 0)
    ::close(M->WakeR);
  if (M->WakeW >= 0)
    ::close(M->WakeW);
  delete M;
}

bool ServiceServer::start() { return M->start(); }

int ServiceServer::serve() { return M->serve(); }

void ServiceServer::requestStop() {
  // Async-signal-safe: one write to the wake pipe; serve() does the rest.
  if (M->WakeW >= 0) {
    char C = 'q';
    [[maybe_unused]] ssize_t N = ::write(M->WakeW, &C, 1);
  }
}
