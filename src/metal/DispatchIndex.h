//===- metal/DispatchIndex.h - Compiled pattern dispatch --------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Syntactic pre-filtering for transition patterns. At checker-registration
/// time each transition's pattern is analyzed into a discriminator — the set
/// of root statement kinds it could unify with, plus (for call points) the
/// admissible callee names — and filed into a (stmt kind, interned callee)
/// index. At a program point the engine then tries full structural matching
/// only on the transitions the index yields, instead of every transition of
/// every state block. Patterns with no syntactic handle (callout-only
/// patterns, holes that accept any expression combined under ||) land in a
/// small always-try bucket so matching semantics are unchanged.
///
/// Soundness contract: if the discriminator excludes a (pattern, point)
/// pair, Pattern::match is guaranteed to return false for it. The index may
/// over-approximate (yield candidates that fail full matching) but never
/// under-approximate. Candidates come back in declaration order — ascending
/// (state block, transition) — so the planned-transition order, and hence
/// every report, is byte-identical with the index on or off.
///
//===----------------------------------------------------------------------===//

#ifndef MC_METAL_DISPATCHINDEX_H
#define MC_METAL_DISPATCHINDEX_H

#include "cfront/AST.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace mc {

class Pattern;

/// What a pattern's root can syntactically accept; computed bottom-up over
/// the &&/||/callout structure (see PatternDiscriminator::of).
struct PatternDiscriminator {
  enum Shape {
    Never,     ///< Matches no point (e.g. a stray `any args` hole).
    AlwaysTry, ///< No syntactic filter; full matching must always run.
    Filtered,  ///< KindMask (plus callee names at call points) applies.
  };

  Shape Kind = AlwaysTry;
  /// One bit per Stmt::StmtKind the root could unify with (Filtered only).
  uint64_t KindMask = 0;
  /// When KindMask includes SK_Call: true if any callee is admissible.
  bool AnyCallee = false;
  /// When KindMask includes SK_Call and !AnyCallee: admissible callee names.
  std::vector<std::string> Callees;

  static PatternDiscriminator never() { return {Never, 0, false, {}}; }
  static PatternDiscriminator always() { return {AlwaysTry, 0, false, {}}; }

  /// Every-expression-kind mask (what an untyped hole accepts).
  static uint64_t anyExprMask();

  /// Analyzes \p P. Conservative: only shapes provably implied by the
  /// unification rules in Pattern.cpp are used to filter.
  static PatternDiscriminator of(const Pattern &P);

  /// D1 || D2 and D1 && D2 under the soundness ordering Never < Filtered <
  /// AlwaysTry.
  static PatternDiscriminator unite(const PatternDiscriminator &L,
                                    const PatternDiscriminator &R);
  static PatternDiscriminator intersect(const PatternDiscriminator &L,
                                        const PatternDiscriminator &R);
};

/// Immutable-after-seal dispatch table. Built once in a checker's
/// constructor and then only read, so one instance is safely shared by every
/// worker engine in a sharded run.
class DispatchIndex {
public:
  /// Packed transition reference: (state-block index << 16) | transition
  /// index. Packing makes "sorted refs" mean "declaration order".
  using Ref = uint32_t;
  static constexpr Ref makeRef(uint32_t Block, uint32_t Trans) {
    return (Block << 16) | Trans;
  }
  static constexpr uint32_t blockOf(Ref R) { return R >> 16; }
  static constexpr uint32_t transOf(Ref R) { return R & 0xffff; }

  using CandidateList = std::vector<Ref>;

  /// Files transition (\p Block, \p Trans) under \p P's discriminator.
  void add(uint32_t Block, uint32_t Trans, const Pattern &P);

  /// Files a pre-computed discriminator with a synthetic ref. Used by native
  /// checkers, which keep their own dispatch but declare trigger sets so the
  /// engine's per-block memo (mayMatch) can skip dead blocks for them too.
  void addTrigger(const PatternDiscriminator &D);

  /// Sorts candidate lists into declaration order. Call once, after the last
  /// add(); the index is immutable (and shareable across threads) after.
  void seal();

  /// Fills \p Out with every transition that could match \p Point, in
  /// ascending Ref order.
  void lookup(const Stmt *Point, CandidateList &Out) const;

  /// Conservative: could *any* registered transition or trigger match
  /// \p Point?
  bool mayMatch(const Stmt *Point) const;

  /// Number of transitions filed via add() (always-try ones included).
  size_t transitionCount() const { return Total; }
  /// Transitions with no syntactic filter.
  size_t alwaysTryCount() const { return AlwaysTry.size(); }

private:
  std::vector<Ref> AlwaysTry;
  /// Non-call kinds, and SK_Call for any-callee patterns.
  std::unordered_map<uint32_t, std::vector<Ref>> ByKind;
  /// SK_Call with a specific callee, keyed by interned name id.
  std::unordered_map<uint32_t, std::vector<Ref>> ByCalleeId;
  size_t Total = 0;
  /// addTrigger() state: feeds mayMatch() only, yields no candidates.
  bool TriggerAlways = false;
  uint64_t TriggerKindMask = 0;
  bool TriggerAnyCallee = false;
  std::vector<uint32_t> TriggerCalleeIds;
};

} // namespace mc

#endif // MC_METAL_DISPATCHINDEX_H
