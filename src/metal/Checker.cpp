//===- metal/Checker.cpp - The checker (extension) interface -----------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "metal/Checker.h"

#include "support/Hash.h"

using namespace mc;

Checker::~Checker() = default;

void Checker::checkEndOfPath(VarState *, AnalysisContext &) {}

int Checker::internState(std::string_view Name) {
  if (Name == "stop")
    return StateStop;
  std::lock_guard<std::mutex> Lock(StateMu);
  auto It = StateIds.find(Name);
  if (It != StateIds.end())
    return It->second;
  if (StateNames.empty())
    StateNames.push_back("stop"); // reserve index 0
  int Id = StateNames.size();
  StateNames.push_back(std::string(Name));
  StateIds.emplace(std::string(Name), Id);
  return Id;
}

int Checker::stateId(std::string_view Name) const {
  if (Name == "stop")
    return StateStop;
  std::lock_guard<std::mutex> Lock(StateMu);
  auto It = StateIds.find(Name);
  return It == StateIds.end() ? StateStop : It->second;
}

std::string Checker::stateName(int Id) const {
  if (Id == StateStop)
    return "stop";
  if (Id == StateUnknown)
    return "unknown";
  std::lock_guard<std::mutex> Lock(StateMu);
  if (Id > 0 && size_t(Id) < StateNames.size())
    return StateNames[Id];
  return "<state" + std::to_string(Id) + ">";
}

int Checker::initialGlobalState() const {
  // The first interned state is the initial one by convention.
  std::lock_guard<std::mutex> Lock(StateMu);
  return StateNames.size() > 1 ? 1 : StateStop;
}

uint64_t Checker::fingerprint() const {
  uint64_t H = fnv1a64(name());
  if (FingerprintSalt)
    H = fnv1a64(FingerprintSalt, H);
  return H;
}
