//===- metal/DispatchIndex.cpp - Compiled pattern dispatch -------------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "metal/DispatchIndex.h"

#include "metal/Pattern.h"
#include "support/Interner.h"

#include <algorithm>

using namespace mc;

static_assert(Stmt::lastExpr < 64, "StmtKind must fit a 64-bit kind mask");

static uint64_t kindBit(unsigned K) { return uint64_t(1) << K; }
static const uint64_t CallBit = kindBit(Stmt::SK_Call);

uint64_t PatternDiscriminator::anyExprMask() {
  uint64_t M = 0;
  for (unsigned K = Stmt::firstExpr; K <= unsigned(Stmt::lastExpr); ++K)
    M |= kindBit(K);
  return M;
}

/// Discriminator of a base (code-fragment) pattern rooted at \p Tree,
/// derived from the unification rules in Pattern.cpp:
///  - unifyStmt demands expression targets for expression patterns, and
///    equal root kinds otherwise — no cast-stripping happens at the root;
///  - an unbound root hole accepts per holeAccepts(); a pre-bound one (the
///    state variable) is compared against the *cast-stripped* target, so an
///    `any fn call` hole can also meet the call behind a cast;
///  - a call pattern whose callee is a plain identifier only unifies with
///    calls whose callee is an identically-spelled identifier.
static PatternDiscriminator ofBase(const Stmt *Tree) {
  if (!Tree)
    return PatternDiscriminator::never();
  PatternDiscriminator D;
  D.Kind = PatternDiscriminator::Filtered;
  if (const auto *H = dyn_cast<HoleExpr>(Tree)) {
    switch (H->holeKind()) {
    case HoleExpr::AnyArguments:
      // Only legal inside an argument list; a stray one matches nothing.
      return PatternDiscriminator::never();
    case HoleExpr::AnyFnCall:
      D.KindMask = CallBit | kindBit(Stmt::SK_Cast);
      D.AnyCallee = true;
      return D;
    default:
      D.KindMask = PatternDiscriminator::anyExprMask();
      D.AnyCallee = true;
      return D;
    }
  }
  if (const auto *C = dyn_cast<CallExpr>(Tree)) {
    D.KindMask = CallBit;
    if (const auto *DR = dyn_cast<DeclRefExpr>(C->callee()))
      D.Callees.emplace_back(DR->name());
    else
      D.AnyCallee = true;
    return D;
  }
  D.KindMask = kindBit(Tree->kind());
  return D;
}

PatternDiscriminator
PatternDiscriminator::unite(const PatternDiscriminator &L,
                            const PatternDiscriminator &R) {
  if (L.Kind == AlwaysTry || R.Kind == AlwaysTry)
    return always();
  if (L.Kind == Never)
    return R;
  if (R.Kind == Never)
    return L;
  PatternDiscriminator D;
  D.Kind = Filtered;
  D.KindMask = L.KindMask | R.KindMask;
  bool LCall = (L.KindMask & CallBit) != 0;
  bool RCall = (R.KindMask & CallBit) != 0;
  D.AnyCallee = (LCall && L.AnyCallee) || (RCall && R.AnyCallee);
  if ((D.KindMask & CallBit) && !D.AnyCallee) {
    if (LCall)
      D.Callees = L.Callees;
    if (RCall)
      D.Callees.insert(D.Callees.end(), R.Callees.begin(), R.Callees.end());
    std::sort(D.Callees.begin(), D.Callees.end());
    D.Callees.erase(std::unique(D.Callees.begin(), D.Callees.end()),
                    D.Callees.end());
  }
  return D;
}

PatternDiscriminator
PatternDiscriminator::intersect(const PatternDiscriminator &L,
                                const PatternDiscriminator &R) {
  if (L.Kind == Never || R.Kind == Never)
    return never();
  if (L.Kind == AlwaysTry)
    return R;
  if (R.Kind == AlwaysTry)
    return L;
  PatternDiscriminator D;
  D.Kind = Filtered;
  D.KindMask = L.KindMask & R.KindMask;
  if (!D.KindMask)
    return never();
  if (D.KindMask & CallBit) {
    if (L.AnyCallee && R.AnyCallee) {
      D.AnyCallee = true;
    } else if (L.AnyCallee) {
      D.Callees = R.Callees;
    } else if (R.AnyCallee) {
      D.Callees = L.Callees;
    } else {
      for (const std::string &N : L.Callees)
        if (std::find(R.Callees.begin(), R.Callees.end(), N) != R.Callees.end())
          D.Callees.push_back(N);
      if (D.Callees.empty()) {
        // Both sides name callees but agree on none: no call can satisfy
        // the conjunction, though other kinds in the mask still might.
        D.KindMask &= ~CallBit;
        if (!D.KindMask)
          return never();
      }
    }
  }
  return D;
}

PatternDiscriminator PatternDiscriminator::of(const Pattern &P) {
  switch (P.patKind()) {
  case Pattern::Base:
    return ofBase(P.baseTree());
  case Pattern::And:
    return intersect(of(*P.lhs()), of(*P.rhs()));
  case Pattern::Or:
    return unite(of(*P.lhs()), of(*P.rhs()));
  case Pattern::Callout:
    // Callouts are opaque predicates (and the registry is mutable), so even
    // ${0} gets no syntactic filter.
    return always();
  case Pattern::EndOfPath:
    // Matches only at path end, which the engine handles separately;
    // unmatchable at program points.
    return never();
  }
  return always();
}

void DispatchIndex::add(uint32_t Block, uint32_t Trans, const Pattern &P) {
  ++Total;
  Ref R = makeRef(Block, Trans);
  PatternDiscriminator D = PatternDiscriminator::of(P);
  switch (D.Kind) {
  case PatternDiscriminator::Never:
    return;
  case PatternDiscriminator::AlwaysTry:
    AlwaysTry.push_back(R);
    return;
  case PatternDiscriminator::Filtered:
    break;
  }
  for (unsigned K = 0; K <= unsigned(Stmt::lastExpr); ++K) {
    if (!(D.KindMask & kindBit(K)))
      continue;
    if (K == Stmt::SK_Call && !D.AnyCallee) {
      for (const std::string &Name : D.Callees)
        ByCalleeId[Interner::global().intern(Name)].push_back(R);
      continue;
    }
    ByKind[K].push_back(R);
  }
}

void DispatchIndex::addTrigger(const PatternDiscriminator &D) {
  switch (D.Kind) {
  case PatternDiscriminator::Never:
    return;
  case PatternDiscriminator::AlwaysTry:
    TriggerAlways = true;
    return;
  case PatternDiscriminator::Filtered:
    break;
  }
  uint64_t M = D.KindMask;
  if (M & CallBit) {
    if (D.AnyCallee) {
      TriggerAnyCallee = true;
    } else {
      for (const std::string &Name : D.Callees)
        TriggerCalleeIds.push_back(Interner::global().intern(Name));
      // Keep the call bit out of the mask: calls are admitted through the
      // callee-id check, not wholesale.
      M &= ~CallBit;
    }
  }
  TriggerKindMask |= M;
}

void DispatchIndex::seal() {
  auto SortUnique = [](std::vector<uint32_t> &V) {
    std::sort(V.begin(), V.end());
    V.erase(std::unique(V.begin(), V.end()), V.end());
  };
  SortUnique(AlwaysTry);
  for (auto &KV : ByKind)
    SortUnique(KV.second);
  for (auto &KV : ByCalleeId)
    SortUnique(KV.second);
  SortUnique(TriggerCalleeIds);
}

void DispatchIndex::lookup(const Stmt *Point, CandidateList &Out) const {
  Out.clear();
  unsigned K = Point->kind();
  auto ItK = ByKind.find(K);
  if (ItK != ByKind.end())
    Out.insert(Out.end(), ItK->second.begin(), ItK->second.end());
  if (K == Stmt::SK_Call && !ByCalleeId.empty()) {
    std::string_view Callee = cast<CallExpr>(Point)->calleeName();
    if (!Callee.empty())
      if (uint32_t Id = Interner::global().lookup(Callee)) {
        auto ItC = ByCalleeId.find(Id);
        if (ItC != ByCalleeId.end())
          Out.insert(Out.end(), ItC->second.begin(), ItC->second.end());
      }
  }
  Out.insert(Out.end(), AlwaysTry.begin(), AlwaysTry.end());
  // The buckets are disjoint and individually sorted; merging up to three of
  // them still needs one sort to restore global declaration order.
  if (Out.size() > 1)
    std::sort(Out.begin(), Out.end());
}

bool DispatchIndex::mayMatch(const Stmt *Point) const {
  if (!AlwaysTry.empty() || TriggerAlways)
    return true;
  unsigned K = Point->kind();
  if (TriggerKindMask & kindBit(K))
    return true;
  if (ByKind.find(K) != ByKind.end())
    return true;
  if (K == Stmt::SK_Call) {
    std::string_view Callee = cast<CallExpr>(Point)->calleeName();
    if (!Callee.empty())
      if (uint32_t Id = Interner::global().lookup(Callee)) {
        if (ByCalleeId.find(Id) != ByCalleeId.end())
          return true;
        if (std::binary_search(TriggerCalleeIds.begin(),
                               TriggerCalleeIds.end(), Id))
          return true;
      }
  }
  return false;
}
