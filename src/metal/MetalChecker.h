//===- metal/MetalChecker.h - Interpreter for metal checkers ----*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a parsed metal program as a Checker. At each program point it
/// looks for executable transitions: global-state transitions can create new
/// state machines (add edges); variable-specific transitions are triggered
/// per live instance with the state variable pre-bound to that instance's
/// tree (Section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef MC_METAL_METALCHECKER_H
#define MC_METAL_METALCHECKER_H

#include "metal/Checker.h"
#include "metal/DispatchIndex.h"
#include "metal/MetalParser.h"

namespace mc {

/// An interpreted metal checker.
class MetalChecker : public Checker {
public:
  explicit MetalChecker(std::unique_ptr<CheckerSpec> Spec);

  std::string_view name() const override { return Spec->Name; }
  void checkPoint(const Stmt *Point, AnalysisContext &ACtx) override;
  void checkEndOfPath(VarState *VS, AnalysisContext &ACtx) override;
  const DispatchIndex *dispatchIndex() const override { return &Index; }

  const CheckerSpec &spec() const { return *Spec; }

  /// Renders the compiled state machine (used by the Figure 1/3 benches).
  std::string describe() const;

private:
  struct CompiledTransition {
    const MetalTransition *T;
    int DestValue = StateStop;      ///< For non-path-specific.
    int TrueValue = StateStop, FalseValue = StateStop;
  };
  struct CompiledBlock {
    bool IsVarState;
    int StateValue;
    std::vector<CompiledTransition> Transitions;
  };

  void execute(const CompiledTransition &CT, const Stmt *Point, Bindings &B,
               VarState *Instance, AnalysisContext &ACtx);
  void runActions(const std::vector<MetalAction> &Actions, const Stmt *Point,
                  const Bindings &B, VarState *Instance,
                  AnalysisContext &ACtx);
  std::string resolveArgText(const CalloutArg &Arg, const Bindings &B) const;

  std::unique_ptr<CheckerSpec> Spec;
  std::vector<CompiledBlock> Blocks;
  int InitialState = StateStop;
  /// Built in the constructor, read-only afterwards (shared across workers).
  DispatchIndex Index;
  /// Number of transitions matchable at points (i.e. not $end_of_path$).
  size_t PointTransitions = 0;
};

} // namespace mc

#endif // MC_METAL_METALCHECKER_H
