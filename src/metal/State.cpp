//===- metal/State.cpp - Extension state model -------------------------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "metal/State.h"

using namespace mc;

std::vector<StateTuple> mc::tuplesOf(const SMInstance &SM) {
  std::vector<StateTuple> Tuples;
  for (const VarState &VS : SM.ActiveVars) {
    if (!VS.live() || VS.Inactive)
      continue;
    Tuples.push_back(StateTuple{SM.GState, VS.TreeKey, VS.Value, VS.Data});
  }
  if (Tuples.empty())
    Tuples.push_back(StateTuple{SM.GState, std::string(), StateStop,
                                std::string()});
  return Tuples;
}

std::string mc::tupleStr(const StateTuple &T,
                         const std::function<std::string(int)> &StateName,
                         std::string_view VarName) {
  std::string Out = "(";
  Out += StateName(T.GState);
  Out += ", ";
  if (T.isPlaceholder()) {
    Out += "<>";
  } else {
    Out.append(VarName);
    Out += ':';
    Out += T.TreeKey;
    Out += "->";
    Out += T.Value == StateUnknown ? "unknown" : StateName(T.Value);
  }
  Out += ')';
  return Out;
}
