//===- metal/State.cpp - Extension state model -------------------------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "metal/State.h"

#include "support/Allocator.h"
#include "support/Interner.h"

using namespace mc;

uint32_t mc::symbolize(std::string_view S) {
  if (S.empty())
    return 0;
  return Interner::global().intern(S);
}

std::string_view mc::symbolText(uint32_t Sym) {
  if (!Sym)
    return {};
  return Interner::global().text(Sym);
}

uint32_t mc::lookupSymbol(std::string_view S) {
  if (S.empty())
    return 0;
  return Interner::global().lookup(S);
}

bool mc::symbolTextLess(uint32_t A, uint32_t B) {
  if (A == B)
    return false;
  return symbolText(A) < symbolText(B);
}

bool StateTuple::operator<(const StateTuple &RHS) const {
  // Field order matches the historical string layout: (GState, TreeKey,
  // Value, Data), with text comparison for the symbol fields so ordered
  // containers keep their pre-interning iteration order.
  if (GState != RHS.GState)
    return GState < RHS.GState;
  if (TreeKey != RHS.TreeKey)
    return symbolText(TreeKey) < symbolText(RHS.TreeKey);
  if (Value != RHS.Value)
    return Value < RHS.Value;
  if (Data != RHS.Data)
    return symbolText(Data) < symbolText(RHS.Data);
  return false;
}

std::vector<StateTuple> mc::tuplesOf(const SMInstance &SM) {
  std::vector<StateTuple> Tuples;
  for (const VarState &VS : SM.ActiveVars) {
    if (!VS.live() || VS.Inactive)
      continue;
    Tuples.push_back(StateTuple{SM.GState, VS.TreeKey, VS.Value, VS.Data});
  }
  if (Tuples.empty())
    Tuples.push_back(StateTuple{SM.GState, 0, StateStop, 0});
  return Tuples;
}

TupleSpan mc::tuplesOf(const SMInstance &SM, BumpPtrAllocator &Arena) {
  uint32_t Live = 0;
  for (const VarState &VS : SM.ActiveVars)
    if (VS.live() && !VS.Inactive)
      ++Live;
  uint32_t N = Live ? Live : 1;
  auto *Tuples = static_cast<StateTuple *>(
      Arena.allocate(sizeof(StateTuple) * N, alignof(StateTuple)));
  if (!Live) {
    Tuples[0] = StateTuple{SM.GState, 0, StateStop, 0};
    return TupleSpan{Tuples, 1};
  }
  uint32_t I = 0;
  for (const VarState &VS : SM.ActiveVars)
    if (VS.live() && !VS.Inactive)
      Tuples[I++] = StateTuple{SM.GState, VS.TreeKey, VS.Value, VS.Data};
  return TupleSpan{Tuples, Live};
}

std::string mc::tupleStr(const StateTuple &T,
                         const std::function<std::string(int)> &StateName,
                         std::string_view VarName) {
  std::string Out = "(";
  Out += StateName(T.GState);
  Out += ", ";
  if (T.isPlaceholder()) {
    Out += "<>";
  } else {
    Out.append(VarName);
    Out += ':';
    Out += symbolText(T.TreeKey);
    Out += "->";
    Out += T.Value == StateUnknown ? "unknown" : StateName(T.Value);
  }
  Out += ')';
  return Out;
}
