//===- metal/MetalParser.cpp - The metal language frontend -------------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "metal/MetalParser.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cstdlib>

using namespace mc;

namespace {

/// Character-level scanner for the metal surface syntax. Pattern bodies and
/// action bodies are captured raw (brace-balanced) and handed to the C
/// parser / action parser.
class MetalScanner {
public:
  MetalScanner(const std::string &Text, unsigned FileID,
               DiagnosticEngine &Diags)
      : Text(Text), FileID(FileID), Diags(Diags) {}

  void skipWs() {
    for (;;) {
      while (Pos < Text.size() && std::isspace((unsigned char)Text[Pos]))
        ++Pos;
      if (Pos + 1 < Text.size() && Text[Pos] == '/' && Text[Pos + 1] == '/') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      if (Pos + 1 < Text.size() && Text[Pos] == '/' && Text[Pos + 1] == '*') {
        Pos += 2;
        while (Pos + 1 < Text.size() &&
               !(Text[Pos] == '*' && Text[Pos + 1] == '/'))
          ++Pos;
        Pos = Pos + 1 < Text.size() ? Pos + 2 : Text.size();
        continue;
      }
      return;
    }
  }

  bool atEnd() {
    skipWs();
    return Pos >= Text.size();
  }

  char peek() {
    skipWs();
    return Pos < Text.size() ? Text[Pos] : '\0';
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(std::string_view W) {
    skipWs();
    if (Text.compare(Pos, W.size(), W) != 0)
      return false;
    size_t After = Pos + W.size();
    if (After < Text.size() &&
        (std::isalnum((unsigned char)Text[After]) || Text[After] == '_'))
      return false;
    Pos = After;
    return true;
  }

  bool consumeSeq(std::string_view S) {
    skipWs();
    if (Text.compare(Pos, S.size(), S) != 0)
      return false;
    Pos += S.size();
    return true;
  }

  std::string ident() {
    skipWs();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum((unsigned char)Text[Pos]) || Text[Pos] == '_'))
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }

  /// Captures brace-balanced text; assumes the current char is '{'.
  std::string captureBraces() {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != '{') {
      error("expected '{'");
      return {};
    }
    ++Pos;
    size_t Start = Pos;
    int Depth = 1;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"' || C == '\'') {
        char Quote = C;
        ++Pos;
        while (Pos < Text.size() && Text[Pos] != Quote) {
          if (Text[Pos] == '\\')
            ++Pos;
          ++Pos;
        }
        ++Pos;
        continue;
      }
      if (C == '{')
        ++Depth;
      else if (C == '}') {
        --Depth;
        if (Depth == 0) {
          std::string Inner = Text.substr(Start, Pos - Start);
          ++Pos;
          return Inner;
        }
      }
      ++Pos;
    }
    error("unterminated '{'");
    return {};
  }

  /// Captures raw text up to (not including) the next top-level ';'.
  std::string captureToSemi() {
    skipWs();
    size_t Start = Pos;
    while (Pos < Text.size() && Text[Pos] != ';')
      ++Pos;
    std::string S = Text.substr(Start, Pos - Start);
    if (Pos < Text.size())
      ++Pos; // ';'
    return S;
  }

  std::string stringLit() {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != '"') {
      error("expected string literal");
      return {};
    }
    ++Pos;
    std::string Out;
    while (Pos < Text.size() && Text[Pos] != '"') {
      if (Text[Pos] == '\\' && Pos + 1 < Text.size()) {
        ++Pos;
        switch (Text[Pos]) {
        case 'n': Out += '\n'; break;
        case 't': Out += '\t'; break;
        default: Out += Text[Pos]; break;
        }
        ++Pos;
        continue;
      }
      Out += Text[Pos++];
    }
    if (Pos < Text.size())
      ++Pos;
    return Out;
  }

  void error(const std::string &Msg) {
    Diags.error(SourceLoc(FileID, Pos), "metal: " + Msg);
  }

  unsigned pos() const { return Pos; }
  void setPos(unsigned P) { Pos = P; }
  const std::string &text() const { return Text; }

private:
  const std::string &Text;
  unsigned FileID;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

class MetalParserImpl {
public:
  MetalParserImpl(const std::string &Text, unsigned FileID, SourceManager &SM,
                  DiagnosticEngine &Diags)
      : Scan(Text, FileID, Diags), SM(SM), Diags(Diags) {}

  std::unique_ptr<CheckerSpec> run() {
    Spec = std::make_unique<CheckerSpec>();
    if (!Scan.consumeWord("sm")) {
      Scan.error("a checker starts with 'sm <name>;'");
      return nullptr;
    }
    Spec->Name = Scan.ident();
    if (Spec->Name.empty()) {
      Scan.error("missing checker name");
      return nullptr;
    }
    Scan.consume(';');

    // Hole declarations.
    for (;;) {
      if (Scan.consumeWord("state")) {
        if (!Scan.consumeWord("decl")) {
          Scan.error("expected 'decl' after 'state'");
          return nullptr;
        }
        if (!parseHoleDecl(/*IsStateVar=*/true))
          return nullptr;
        continue;
      }
      if (Scan.consumeWord("decl")) {
        if (!parseHoleDecl(/*IsStateVar=*/false))
          return nullptr;
        continue;
      }
      break;
    }

    // State blocks.
    while (!Scan.atEnd())
      if (!parseStateBlock())
        return nullptr;
    if (Spec->Blocks.empty()) {
      Scan.error("checker has no state blocks");
      return nullptr;
    }
    return std::move(Spec);
  }

private:
  /// Parses `['state'] decl <type> <name> ;`.
  bool parseHoleDecl(bool IsStateVar) {
    std::string Raw = Scan.captureToSemi();
    // The declared name is the last identifier; everything before it is the
    // (meta) type. Leading '*' on the name belongs to the type.
    std::string_view Trimmed = trim(Raw);
    size_t NameStart = Trimmed.size();
    while (NameStart > 0 && (std::isalnum((unsigned char)Trimmed[NameStart - 1]) ||
                             Trimmed[NameStart - 1] == '_'))
      --NameStart;
    std::string Name(Trimmed.substr(NameStart));
    std::string TypeText(trim(Trimmed.substr(0, NameStart)));
    if (Name.empty() || TypeText.empty()) {
      Scan.error("malformed hole declaration");
      return false;
    }

    PatternHoles::Hole H{HoleExpr::AnyExpr, nullptr};
    std::string Norm;
    for (char C : TypeText)
      Norm += C == ' ' || C == '\t' ? '_' : C;
    if (Norm == "any_pointer") {
      H.Kind = HoleExpr::AnyPointer;
    } else if (Norm == "any_expr") {
      H.Kind = HoleExpr::AnyExpr;
    } else if (Norm == "any_scalar") {
      H.Kind = HoleExpr::AnyScalar;
    } else if (Norm == "any_arguments") {
      H.Kind = HoleExpr::AnyArguments;
    } else if (Norm == "any_fn_call") {
      H.Kind = HoleExpr::AnyFnCall;
    } else {
      unsigned FID = SM.addBuffer("<metal-type>", TypeText);
      Parser P(Spec->patternContext(), SM, Diags, FID);
      const Type *Ty = P.parseTypeOnly();
      if (!Ty) {
        Scan.error("cannot parse hole type '" + TypeText + "'");
        return false;
      }
      H.Kind = HoleExpr::CType;
      H.DeclaredTy = Ty;
    }
    Spec->Holes.Holes[Name] = H;
    if (IsStateVar) {
      if (!Spec->StateVarName.empty()) {
        Scan.error("only one 'state decl' variable is supported");
        return false;
      }
      Spec->StateVarName = Name;
    }
    return true;
  }

  /// Compiles one `{ ... }` base pattern via the C parser.
  std::unique_ptr<Pattern> compileBase(const std::string &Body) {
    // Try expression first, then statement; use scratch diagnostics so the
    // expected failures stay silent.
    {
      unsigned FID = SM.addBuffer("<metal-pattern>", Body);
      DiagnosticEngine Scratch(SM);
      Parser P(Spec->patternContext(), SM, Scratch, FID);
      if (const Expr *E = P.parsePatternExpr(Spec->Holes))
        return Pattern::makeBase(E);
    }
    {
      std::string StmtBody = Body;
      if (StmtBody.find(';') == std::string::npos)
        StmtBody += ';';
      unsigned FID = SM.addBuffer("<metal-pattern>", StmtBody);
      DiagnosticEngine Scratch(SM);
      Parser P(Spec->patternContext(), SM, Scratch, FID);
      if (const Stmt *S = P.parsePatternStmt(Spec->Holes))
        return Pattern::makeBase(S);
    }
    Scan.error("cannot parse pattern '{" + Body + "}'");
    return nullptr;
  }

  /// Parses a callout body: `name(args)` or the degenerate `0` / `1`.
  std::unique_ptr<Pattern> compileCallout(const std::string &Body) {
    std::string_view Trimmed = trim(Body);
    if (Trimmed == "0")
      return Pattern::makeCallout("mc_false", {});
    if (Trimmed == "1")
      return Pattern::makeCallout("mc_true", {});
    MetalScanner Inner{Body, 0, Diags};
    std::string Name = Inner.ident();
    if (Name.empty()) {
      Scan.error("malformed callout '${" + Body + "}'");
      return nullptr;
    }
    std::vector<CalloutArg> Args;
    // Reuse the outer arg parser on the inner text by temporary swap — the
    // callout body is tiny, so re-scan it inline.
    std::string Rest = Body;
    size_t ParenPos = Rest.find('(');
    if (ParenPos == std::string::npos)
      return Pattern::makeCallout(Name, {});
    // Parse args with a dedicated scanner.
    if (!parseCalloutArgs(Rest.substr(ParenPos), Args))
      return nullptr;
    return Pattern::makeCallout(Name, std::move(Args));
  }

  bool parseCalloutArgs(const std::string &Text,
                        std::vector<CalloutArg> &Args) {
    MetalScanner S{Text, 0, Diags};
    if (!S.consume('('))
      return true;
    if (S.consume(')'))
      return true;
    do {
      CalloutArg Arg;
      char C = S.peek();
      if (C == '"') {
        Arg.Kind = CalloutArg::String;
        Arg.Text = S.stringLit();
      } else if (std::isdigit((unsigned char)C) || C == '-') {
        std::string Num;
        if (S.consume('-'))
          Num += '-';
        for (;;) {
          char D = S.peek();
          if (!std::isdigit((unsigned char)D))
            break;
          Num += D;
          S.consume(D);
        }
        Arg.Kind = CalloutArg::Int;
        Arg.IntValue = std::strtoll(Num.c_str(), nullptr, 10);
      } else {
        Arg.Kind = CalloutArg::Hole;
        Arg.Text = S.ident();
        if (Arg.Text.empty()) {
          Scan.error("malformed callout argument");
          return false;
        }
      }
      Args.push_back(std::move(Arg));
    } while (S.consume(','));
    return true;
  }

  /// patexpr := pat (('&&' | '||') pat)*   (left associative)
  std::unique_ptr<Pattern> parsePatternExpr() {
    std::unique_ptr<Pattern> LHS = parsePatternAtom();
    if (!LHS)
      return nullptr;
    for (;;) {
      bool IsAnd;
      if (Scan.consumeSeq("&&"))
        IsAnd = true;
      else if (Scan.consumeSeq("||"))
        IsAnd = false;
      else
        return LHS;
      std::unique_ptr<Pattern> RHS = parsePatternAtom();
      if (!RHS)
        return nullptr;
      LHS = IsAnd ? Pattern::makeAnd(std::move(LHS), std::move(RHS))
                  : Pattern::makeOr(std::move(LHS), std::move(RHS));
    }
  }

  std::unique_ptr<Pattern> parsePatternAtom() {
    if (Scan.peek() == '$') {
      Scan.consume('$');
      if (Scan.peek() == '{')
        return compileCallout(Scan.captureBraces());
      std::string Word = Scan.ident();
      if (Word == "end_of_path") {
        Scan.consume('$');
        return Pattern::makeEndOfPath();
      }
      Scan.error("unknown $-pattern '$" + Word + "'");
      return nullptr;
    }
    if (Scan.peek() == '{')
      return compileBase(Scan.captureBraces());
    Scan.error("expected a pattern");
    return nullptr;
  }

  bool parseDestAtom(MetalDest &D) {
    std::string First = Scan.ident();
    if (First.empty()) {
      Scan.error("expected a destination state");
      return false;
    }
    if (Scan.consume('.')) {
      std::string Second = Scan.ident();
      if (First != Spec->StateVarName) {
        Scan.error("unknown state variable '" + First + "'");
        return false;
      }
      D.State = Second;
      D.IsVarState = true;
      return true;
    }
    D.State = First;
    D.IsVarState = false;
    return true;
  }

  bool parseDest(MetalTransition &T) {
    if (Scan.peek() == '{') {
      // Path-specific: { true = dest, false = dest }
      Scan.consume('{');
      T.PathSpecific = true;
      bool SawTrue = false, SawFalse = false;
      do {
        std::string Which = Scan.ident();
        if (!Scan.consume('=')) {
          Scan.error("expected '=' in path-specific destination");
          return false;
        }
        MetalDest D;
        if (!parseDestAtom(D))
          return false;
        if (Which == "true") {
          T.TrueDest = D;
          SawTrue = true;
        } else if (Which == "false") {
          T.FalseDest = D;
          SawFalse = true;
        } else {
          Scan.error("expected 'true' or 'false', got '" + Which + "'");
          return false;
        }
      } while (Scan.consume(','));
      if (!Scan.consume('}')) {
        Scan.error("expected '}' after path-specific destination");
        return false;
      }
      if (!SawTrue || !SawFalse) {
        Scan.error("path-specific destination needs both true= and false=");
        return false;
      }
      return true;
    }
    return parseDestAtom(T.Normal);
  }

  bool parseActions(std::vector<MetalAction> &Actions) {
    std::string Body = Scan.captureBraces();
    MetalScanner S{Body, 0, Diags};
    while (!S.atEnd()) {
      MetalAction A;
      A.Fn = S.ident();
      if (A.Fn.empty()) {
        Scan.error("malformed action");
        return false;
      }
      // Capture the balanced-paren argument text verbatim (whitespace and
      // string contents preserved), then parse it.
      std::string Rest;
      if (S.peek() == '(') {
        const std::string &Raw = S.text();
        size_t P = S.pos(); // at '('
        int Depth = 0;
        size_t Start = P;
        while (P < Raw.size()) {
          char C = Raw[P];
          if (C == '"' || C == '\'') {
            char Quote = C;
            ++P;
            while (P < Raw.size() && Raw[P] != Quote) {
              if (Raw[P] == '\\')
                ++P;
              ++P;
            }
            ++P;
            continue;
          }
          if (C == '(')
            ++Depth;
          else if (C == ')') {
            --Depth;
            if (Depth == 0) {
              ++P;
              break;
            }
          }
          ++P;
        }
        Rest = Raw.substr(Start, P - Start);
        S.setPos(P);
      }
      if (!parseCalloutArgsForAction(Rest, A.Args))
        return false;
      S.consume(';');
      Actions.push_back(std::move(A));
    }
    return true;
  }

  bool parseCalloutArgsForAction(const std::string &Text,
                                 std::vector<CalloutArg> &Args) {
    MetalScanner S{Text, 0, Diags};
    if (!S.consume('('))
      return true;
    if (S.consume(')'))
      return true;
    do {
      CalloutArg Arg;
      char C = S.peek();
      if (C == '"') {
        Arg.Kind = CalloutArg::String;
        Arg.Text = S.stringLit();
      } else if (std::isdigit((unsigned char)C) || C == '-') {
        std::string Num;
        if (S.consume('-'))
          Num += '-';
        for (;;) {
          char D = S.peek();
          if (!std::isdigit((unsigned char)D))
            break;
          Num += D;
          S.consume(D);
        }
        Arg.Kind = CalloutArg::Int;
        Arg.IntValue = std::strtoll(Num.c_str(), nullptr, 10);
      } else {
        std::string Id = S.ident();
        if (Id.empty()) {
          Scan.error("malformed action argument");
          return false;
        }
        if (S.peek() == '(') {
          // Helper call like mc_identifier(v) — unwrap to the hole name.
          S.consume('(');
          std::string Inner = S.ident();
          S.consume(')');
          Arg.Kind = CalloutArg::Hole;
          Arg.Text = Inner.empty() ? Id : Inner;
        } else {
          Arg.Kind = CalloutArg::Hole;
          Arg.Text = Id;
        }
      }
      Args.push_back(std::move(Arg));
    } while (S.consume(','));
    return true;
  }

  bool parseStateBlock() {
    MetalStateBlock Block;
    std::string First = Scan.ident();
    if (First.empty()) {
      Scan.error("expected a state name");
      return false;
    }
    if (Scan.consume('.')) {
      std::string Second = Scan.ident();
      if (First != Spec->StateVarName) {
        Scan.error("unknown state variable '" + First + "'");
        return false;
      }
      Block.IsVarState = true;
      Block.StateName = Second;
    } else {
      Block.StateName = First;
    }
    if (!Scan.consume(':')) {
      Scan.error("expected ':' after state name");
      return false;
    }
    do {
      MetalTransition T;
      T.Pat = parsePatternExpr();
      if (!T.Pat)
        return false;
      if (!Scan.consumeSeq("==>")) {
        Scan.error("expected '==>' after pattern");
        return false;
      }
      if (!parseDest(T))
        return false;
      if (Scan.consume(',')) {
        if (!parseActions(T.Actions))
          return false;
      }
      Block.Transitions.push_back(std::move(T));
    } while (Scan.consume('|'));
    if (!Scan.consume(';')) {
      Scan.error("expected ';' to close state block");
      return false;
    }
    Spec->Blocks.push_back(std::move(Block));
    return true;
  }

  MetalScanner Scan;
  SourceManager &SM;
  DiagnosticEngine &Diags;
  std::unique_ptr<CheckerSpec> Spec;
};

} // namespace

std::unique_ptr<CheckerSpec> mc::parseMetal(const std::string &Text,
                                            const std::string &BufferName,
                                            SourceManager &SM,
                                            DiagnosticEngine &Diags) {
  unsigned FileID = SM.addBuffer(BufferName, Text);
  MetalParserImpl P(Text, FileID, SM, Diags);
  std::unique_ptr<CheckerSpec> Spec = P.run();
  if (Spec) {
    unsigned Lines = 1;
    for (char C : Text)
      if (C == '\n')
        ++Lines;
    Spec->SourceLines = Lines;
  }
  return Spec;
}
