//===- metal/AnalysisContext.h - Engine services for checkers ---*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface the engine presents to an executing checker — the paper's
/// "xgcc internal interface" that C code actions use (Section 3.2). It
/// exposes the current sm_instance for inspection/mutation and the services
/// actions rely on: error reporting, statistical counters, AST annotations
/// (checker composition), path kills, and path-specific transitions.
///
//===----------------------------------------------------------------------===//

#ifndef MC_METAL_ANALYSISCONTEXT_H
#define MC_METAL_ANALYSISCONTEXT_H

#include "metal/State.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace mc {

class FunctionDecl;
class SourceManager;

/// A path-specific effect requested at a branch condition (Section 3.2):
/// when the engine follows the true (false) edge it sets the state attached
/// to TreeKey to TrueValue (FalseValue), creating the instance if needed and
/// deleting it when the value is StateStop.
struct PathSpecificEffect {
  const Expr *Tree = nullptr;
  uint32_t TreeKey = 0; ///< Interned exprKey of Tree.
  int TrueValue = StateStop;
  int FalseValue = StateStop;
};

/// Everything a checker attaches to one report, gathered at one site. The
/// builder replaces the positional reportError(...) overload sprawl: every
/// ranking input — grouping fact, statistical rule, severity override —
/// lands on named fields with chaining setters, and the engine derives the
/// stable fingerprint, witness journal and distance criteria from the same
/// call. reportError() below is a thin shim over this.
struct ReportBuilder {
  /// The human-readable violation message (required).
  std::string Message;
  /// The tracked object the violation is about; null for global-state
  /// violations (anchors the report at the current point instead).
  const VarState *Instance = nullptr;
  /// Groups errors computed from a common analysis fact (Section 9).
  std::string GroupKey;
  /// The statistical rule this violation counts against. Empty defaults to
  /// GroupKey (the historical coupling the shim preserves).
  std::string RuleKey;
  /// Severity override (SECURITY / ERROR / MINOR). Empty means "use the
  /// path annotation", i.e. whatever annotatePath() set.
  std::string Annotation;

  ReportBuilder &message(std::string M) {
    Message = std::move(M);
    return *this;
  }
  ReportBuilder &instance(const VarState *I) {
    Instance = I;
    return *this;
  }
  ReportBuilder &group(std::string G) {
    GroupKey = std::move(G);
    return *this;
  }
  ReportBuilder &rule(std::string R) {
    RuleKey = std::move(R);
    return *this;
  }
  ReportBuilder &annotation(std::string A) {
    Annotation = std::move(A);
    return *this;
  }
};

/// Engine services available to a checker at a program point.
class AnalysisContext {
public:
  virtual ~AnalysisContext() = default;

  //===--------------------------------------------------------------------===//
  // State access
  //===--------------------------------------------------------------------===//

  /// The extension's current state; checkers may mutate it directly.
  /// Mutations are private to the current path (the engine copies state at
  /// splits and reverts on backtrack).
  virtual SMInstance &state() = 0;

  /// Creates a variable-specific instance attached to \p Tree with state
  /// \p Value, recording the creation point so the new instance cannot
  /// trigger a transition at the statement that created it.
  virtual VarState &createInstance(const Expr *Tree, int Value) = 0;

  /// Sets the state value of \p VS; StateStop deletes the instance (and is
  /// mirrored to its synonyms).
  virtual void transition(VarState &VS, int Value) = 0;

  /// True when \p VS was created at the current statement (such instances
  /// must not trigger transitions here — Section 3.2).
  virtual bool justCreated(const VarState &VS) const = 0;

  /// Registers a path-specific effect; only meaningful while the current
  /// point sits inside a branch condition (see atBranchCondition()). When it
  /// does not, the engine forks the state instead, exploring both outcomes.
  virtual void pathSpecific(const PathSpecificEffect &Effect) = 0;

  /// Records that a transition executed at the current point. Calls matched
  /// by the extension are not treated as callsites (Figure 5's note about
  /// kfree), so the engine will not follow a call the checker matched.
  virtual void markTransition() = 0;

  //===--------------------------------------------------------------------===//
  // Reporting and ranking inputs
  //===--------------------------------------------------------------------===//

  /// Emits a rule-violation report anchored at the current point: the single
  /// reporting entry point. The engine attaches the ranking criteria, the
  /// witness journal, and the stable fingerprint here — one site, every
  /// surface.
  virtual void report(const ReportBuilder &B) = 0;

  /// Legacy positional shim over report(). Prefer the builder for anything
  /// beyond message + instance + group.
  void reportError(std::string Message, const VarState *Instance,
                   std::string GroupKey = std::string()) {
    ReportBuilder B;
    B.Message = std::move(Message);
    B.Instance = Instance;
    B.GroupKey = std::move(GroupKey);
    report(B);
  }

  /// Statistical ranking counters (Section 9): a successful check of rule
  /// \p RuleKey.
  virtual void countExample(const std::string &RuleKey) = 0;
  /// A violation of rule \p RuleKey.
  virtual void countViolation(const std::string &RuleKey) = 0;

  /// Attaches ranking annotations (SECURITY / ERROR / MINOR) to everything
  /// reported on the current path from here on.
  virtual void annotatePath(const std::string &Tag) = 0;

  //===--------------------------------------------------------------------===//
  // Composition (Section 3.2) and traversal control
  //===--------------------------------------------------------------------===//

  /// Annotates an AST node for later checkers (composition).
  virtual void annotate(const Stmt *Node, const std::string &Key,
                        const std::string &Value) = 0;
  /// Reads an annotation left by an earlier checker; null when absent.
  virtual const std::string *annotation(const Stmt *Node,
                                        const std::string &Key) const = 0;

  /// Stops traversing the current path (the path-kill composition idiom:
  /// paths dominated by panic() report nothing).
  virtual void killPath() = 0;

  /// Signals an unrecoverable checker fault. The library builds with
  /// -fno-exceptions, so a checker that detects it has gone wrong (corrupt
  /// state, impossible invariant) raises the fault cooperatively: the engine
  /// abandons the current root, discards its partial reports, and quarantines
  /// it — the fault never crosses the root boundary. Defaulted to a no-op so
  /// tests' mock contexts need not care.
  virtual void raiseFault(const std::string & /*Reason*/) {}

  //===--------------------------------------------------------------------===//
  // Dispatch-index services
  //===--------------------------------------------------------------------===//

  /// Whether the checker may consult its compiled dispatch index here
  /// (EngineOptions::EnableDispatchIndex; --no-dispatch-index forces the
  /// naive try-every-transition loop). Defaulted so tests' mock contexts
  /// need not care.
  virtual bool dispatchIndexEnabled() const { return true; }

  /// Telemetry: one index consultation narrowed \p Total point-matchable
  /// transitions down to \p Tried candidates.
  virtual void noteDispatchLookup(uint64_t /*Total*/, uint64_t /*Tried*/) {}

  //===--------------------------------------------------------------------===//
  // Observability services
  //===--------------------------------------------------------------------===//

  /// Adds \p Delta to the named counter on the engine's metrics registry.
  /// Checkers use it to publish domain counters into --stats-json/--profile
  /// output; names should follow the `checker.<name>.<noun>[.<event>]`
  /// convention (see DESIGN.md "Observability"). Defaulted to a no-op so
  /// tests' mock contexts need not care, and so counting never changes
  /// analysis behavior.
  virtual void countMetric(std::string_view /*DottedName*/,
                           uint64_t /*Delta*/ = 1) {}

  /// Witness capture: records that a state-machine transition fired at the
  /// current point, for the path journal behind --explain and the manifest's
  /// witnesses array. \p Object is the tracked object's key ("" for the
  /// global state), \p From/\p To printable state names ("" From means a
  /// fresh instance). Defaulted to a no-op: capture is an observability
  /// concern, disabled-by-default, and must never change analysis behavior.
  virtual void noteTransition(std::string_view /*Object*/,
                              std::string_view /*From*/,
                              std::string_view /*To*/) {}

  //===--------------------------------------------------------------------===//
  // Environment
  //===--------------------------------------------------------------------===//

  /// The function being analysed.
  virtual const FunctionDecl *currentFunction() const = 0;
  /// The top-level statement tree containing the current point.
  virtual const Stmt *currentTopStmt() const = 0;
  /// True when the current point is inside the controlling expression of a
  /// conditional branch.
  virtual bool atBranchCondition() const = 0;
  /// The controlling expression of the current block's branch, or null.
  virtual const Expr *branchCondition() const = 0;
  /// Source manager for location rendering inside messages.
  virtual const SourceManager &sourceManager() const = 0;
};

} // namespace mc

#endif // MC_METAL_ANALYSISCONTEXT_H
