//===- metal/MetalChecker.cpp - Interpreter for metal checkers ---------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "metal/MetalChecker.h"

#include "cfront/ASTPrinter.h"
#include "support/StringUtils.h"

#include <cstdlib>

using namespace mc;

MetalChecker::MetalChecker(std::unique_ptr<CheckerSpec> SpecIn)
    : Spec(std::move(SpecIn)) {
  // Intern the initial global state first so initialGlobalState() is right:
  // the first block in the text defines the starting state (Section 2.1).
  for (const MetalStateBlock &MB : Spec->Blocks)
    if (!MB.IsVarState) {
      InitialState = internState(MB.StateName);
      break;
    }
  for (const MetalStateBlock &MB : Spec->Blocks) {
    CompiledBlock CB;
    CB.IsVarState = MB.IsVarState;
    CB.StateValue = internState(MB.StateName);
    for (const MetalTransition &T : MB.Transitions) {
      CompiledTransition CT;
      CT.T = &T;
      if (T.PathSpecific) {
        CT.TrueValue = internState(T.TrueDest.State);
        CT.FalseValue = internState(T.FalseDest.State);
      } else {
        CT.DestValue = internState(T.Normal.State);
      }
      CB.Transitions.push_back(CT);
    }
    Blocks.push_back(std::move(CB));
  }
  if (InitialState == StateStop && !Spec->Blocks.empty())
    InitialState = internState("start");

  // Compile the dispatch index: every point-matchable transition is filed
  // under its pattern's discriminator. $end_of_path$-mentioning transitions
  // never match at points (checkEndOfPath owns them), so they are left out
  // entirely. Immutable from here on.
  for (size_t BI = 0; BI != Blocks.size(); ++BI)
    for (size_t TI = 0; TI != Blocks[BI].Transitions.size(); ++TI) {
      const MetalTransition &T = *Blocks[BI].Transitions[TI].T;
      if (T.Pat->mentionsEndOfPath())
        continue;
      Index.add(uint32_t(BI), uint32_t(TI), *T.Pat);
      ++PointTransitions;
    }
  Index.seal();
}

std::string MetalChecker::resolveArgText(const CalloutArg &Arg,
                                         const Bindings &B) const {
  switch (Arg.Kind) {
  case CalloutArg::String:
    return Arg.Text;
  case CalloutArg::Int:
    return std::to_string(Arg.IntValue);
  case CalloutArg::Hole: {
    auto It = B.find(Arg.Text);
    return It == B.end() ? "<" + Arg.Text + ">" : printExpr(It->second);
  }
  }
  return {};
}

void MetalChecker::runActions(const std::vector<MetalAction> &Actions,
                              const Stmt *Point, const Bindings &B,
                              VarState *Instance, AnalysisContext &ACtx) {
  for (const MetalAction &A : Actions) {
    if (A.Fn == "err" || A.Fn == "warn" || A.Fn == "note") {
      if (A.Args.empty())
        continue;
      // printf-lite: each %s consumes the next argument.
      std::string Fmt = A.Args[0].Kind == CalloutArg::String
                            ? A.Args[0].Text
                            : resolveArgText(A.Args[0], B);
      std::string Msg;
      size_t ArgIdx = 1;
      for (size_t I = 0; I != Fmt.size(); ++I) {
        if (Fmt[I] == '%' && I + 1 < Fmt.size() && Fmt[I + 1] == 's') {
          Msg += ArgIdx < A.Args.size() ? resolveArgText(A.Args[ArgIdx], B)
                                        : "%s";
          ++ArgIdx;
          ++I;
          continue;
        }
        Msg += Fmt[I];
      }
      ACtx.report(
          ReportBuilder()
              .message(std::move(Msg))
              .instance(Instance)
              .group(Instance ? std::string(symbolText(Instance->FactKey))
                              : std::string()));
      continue;
    }
    if (A.Fn == "set_global") {
      if (!A.Args.empty())
        ACtx.state().GState = internState(A.Args[0].Text);
      continue;
    }
    if (A.Fn == "count_example" || A.Fn == "count_violation") {
      std::string Key;
      for (const CalloutArg &Arg : A.Args)
        Key += resolveArgText(Arg, B);
      if (A.Fn == "count_example")
        ACtx.countExample(Key);
      else
        ACtx.countViolation(Key);
      continue;
    }
    if (A.Fn == "annotate") {
      if (!A.Args.empty() && Point)
        ACtx.annotate(Point, A.Args[0].Text,
                      A.Args.size() > 1 ? resolveArgText(A.Args[1], B) : "1");
      continue;
    }
    if (A.Fn == "path_annotate") {
      if (!A.Args.empty())
        ACtx.annotatePath(A.Args[0].Text);
      continue;
    }
    if (A.Fn == "kill_path") {
      ACtx.killPath();
      continue;
    }
    if (A.Fn == "data_set" || A.Fn == "data_inc" || A.Fn == "data_dec") {
      if (!Instance)
        continue;
      std::string Text(symbolText(Instance->Data));
      long long D = Text.empty() ? 0 : std::strtoll(Text.c_str(), nullptr, 10);
      if (A.Fn == "data_set")
        D = A.Args.empty() ? 0 : A.Args[0].IntValue;
      else if (A.Fn == "data_inc")
        D += 1;
      else
        D -= 1;
      Instance->Data = symbolize(std::to_string(D));
      continue;
    }
    // Unknown action names are ignored (forward compatibility), matching
    // the "do not limit what extensions express" spirit.
  }
}

void MetalChecker::execute(const CompiledTransition &CT, const Stmt *Point,
                           Bindings &B, VarState *Instance,
                           AnalysisContext &ACtx) {
  const MetalTransition &T = *CT.T;
  ACtx.markTransition();

  if (T.PathSpecific) {
    const Expr *Tree = nullptr;
    if (Instance) {
      Tree = Instance->Tree;
    } else if (!Spec->StateVarName.empty()) {
      auto It = B.find(Spec->StateVarName);
      if (It != B.end())
        Tree = It->second;
    }
    if (Tree)
      ACtx.pathSpecific(PathSpecificEffect{Tree, symbolize(exprKey(Tree)),
                                           CT.TrueValue, CT.FalseValue});
    runActions(T.Actions, Point, B, Instance, ACtx);
    return;
  }

  if (T.Normal.IsVarState) {
    if (Instance) {
      // Capture identity before transition(): StateStop may sweep the
      // instance (and its synonyms) out from under us.
      std::string Obj(symbolText(Instance->TreeKey));
      int Old = Instance->Value;
      ACtx.transition(*Instance, CT.DestValue);
      ACtx.noteTransition(Obj, stateName(Old), stateName(CT.DestValue));
    } else {
      // A creation transition: attach state to the tree the state variable
      // matched — but only when we know nothing about that tree yet (the
      // add-edge precondition of Section 5.2). When an instance already
      // exists, the event belongs to that instance's own transitions, so
      // the creation rule (actions included) does not fire.
      auto It = B.find(Spec->StateVarName);
      if (It == B.end())
        return;
      std::string Key = exprKey(It->second);
      if (ACtx.state().findByKey(Key))
        return;
      if (CT.DestValue != StateStop) {
        // Actions run against the new instance (e.g. data_set to initialize
        // a recursion counter).
        VarState &New = ACtx.createInstance(It->second, CT.DestValue);
        // Remember the analysis fact behind the tracking: errors that share
        // it are grouped (e.g. all errors from one freeing function).
        if (const auto *CE = dyn_cast_or_null<CallExpr>(Point))
          New.FactKey = symbolize(CE->calleeName());
        ACtx.noteTransition(symbolText(New.TreeKey), "",
                            stateName(CT.DestValue));
        runActions(T.Actions, Point, B, &New, ACtx);
        return;
      }
      // Creation straight to stop: no instance materializes, but the firing
      // is still the path's terminal fact — journal it so a rule that errs
      // at the match site does not produce a witness-less report.
      ACtx.noteTransition(Key, "", stateName(CT.DestValue));
    }
  } else {
    int Old = ACtx.state().GState;
    ACtx.state().GState = CT.DestValue;
    ACtx.noteTransition("", stateName(Old), stateName(CT.DestValue));
  }
  runActions(T.Actions, Point, B, Instance, ACtx);
}

void MetalChecker::checkPoint(const Stmt *Point, AnalysisContext &ACtx) {
  SMInstance &SM = ACtx.state();

  // Dispatch: with the index enabled, only transitions whose discriminator
  // admits this point's (kind, callee) run full structural matching. The
  // candidate list is sorted by packed (block, transition) ref, i.e. exactly
  // declaration order, so the plan below is identical to the naive loop's.
  // Per-thread buffers: one MetalChecker serves all worker engines.
  static thread_local DispatchIndex::CandidateList Cands;
  static thread_local std::vector<uint32_t> TryList;
  const bool UseIndex = ACtx.dispatchIndexEnabled();
  size_t Cursor = 0;
  if (UseIndex) {
    Index.lookup(Point, Cands);
    ACtx.noteDispatchLookup(PointTransitions, Cands.size());
    if (Cands.empty())
      return;
  }

  // Plan first, then apply: transitions must not observe each other's
  // effects within one point (the independence requirement).
  struct Planned {
    const CompiledTransition *CT;
    Bindings B;
    uint32_t InstanceKey = 0; ///< 0 for global-sourced transitions.
  };
  std::vector<Planned> Plan;

  for (size_t BI = 0; BI != Blocks.size(); ++BI) {
    const CompiledBlock &CB = Blocks[BI];
    TryList.clear();
    if (UseIndex) {
      while (Cursor != Cands.size() &&
             DispatchIndex::blockOf(Cands[Cursor]) == BI)
        TryList.push_back(DispatchIndex::transOf(Cands[Cursor++]));
    } else {
      for (uint32_t TI = 0; TI != CB.Transitions.size(); ++TI)
        if (!CB.Transitions[TI].T->Pat->mentionsEndOfPath())
          TryList.push_back(TI);
    }
    if (TryList.empty())
      continue;
    if (!CB.IsVarState) {
      if (CB.StateValue != SM.GState)
        continue;
      for (uint32_t TI : TryList) {
        const CompiledTransition &CT = CB.Transitions[TI];
        Bindings B;
        CalloutEnv Env{Point, &B, &ACtx, nullptr};
        if (CT.T->Pat->match(Point, B, Env))
          Plan.push_back(Planned{&CT, std::move(B), 0});
      }
      continue;
    }
    for (VarState &VS : SM.ActiveVars) {
      if (!VS.live() || VS.Inactive || VS.Value != CB.StateValue)
        continue;
      if (ACtx.justCreated(VS))
        continue; // No transition at the creating statement (Section 3.2).
      for (uint32_t TI : TryList) {
        const CompiledTransition &CT = CB.Transitions[TI];
        Bindings B;
        if (!Spec->StateVarName.empty())
          B.emplace(Spec->StateVarName, VS.Tree);
        CalloutEnv Env{Point, &B, &ACtx, &VS};
        if (CT.T->Pat->match(Point, B, Env)) {
          Plan.push_back(Planned{&CT, std::move(B), VS.TreeKey});
          break; // First matching transition per instance wins.
        }
      }
    }
  }

  for (Planned &P : Plan) {
    VarState *Instance = P.InstanceKey ? SM.findByKey(P.InstanceKey) : nullptr;
    if (P.InstanceKey && !Instance)
      continue; // A previous transition stopped it.
    execute(*P.CT, Point, P.B, Instance, ACtx);
  }
}

void MetalChecker::checkEndOfPath(VarState *VS, AnalysisContext &ACtx) {
  for (const CompiledBlock &CB : Blocks) {
    for (const CompiledTransition &CT : CB.Transitions) {
      if (!CT.T->Pat->mentionsEndOfPath())
        continue;
      if (CB.IsVarState) {
        if (!VS || VS->Value != CB.StateValue)
          continue;
        Bindings B;
        if (!Spec->StateVarName.empty())
          B.emplace(Spec->StateVarName, VS->Tree);
        execute(CT, nullptr, B, VS, ACtx);
      } else if (!VS && CB.StateValue == ACtx.state().GState) {
        Bindings B;
        execute(CT, nullptr, B, nullptr, ACtx);
      }
    }
  }
}

std::string MetalChecker::describe() const {
  std::string Out = "sm " + Spec->Name + ";\n";
  if (!Spec->StateVarName.empty())
    Out += "  state variable: " + Spec->StateVarName + "\n";
  for (const auto &[Name, H] : Spec->Holes.Holes) {
    const char *Kind = "";
    switch (H.Kind) {
    case HoleExpr::CType: Kind = "C type"; break;
    case HoleExpr::AnyExpr: Kind = "any expr"; break;
    case HoleExpr::AnyScalar: Kind = "any scalar"; break;
    case HoleExpr::AnyPointer: Kind = "any pointer"; break;
    case HoleExpr::AnyArguments: Kind = "any arguments"; break;
    case HoleExpr::AnyFnCall: Kind = "any fn_call"; break;
    }
    Out += "  decl " + std::string(Kind) + " " + Name + ";\n";
  }
  for (const MetalStateBlock &MB : Spec->Blocks) {
    Out += "  state ";
    if (MB.IsVarState)
      Out += Spec->StateVarName + ".";
    Out += MB.StateName + ": " + std::to_string(MB.Transitions.size()) +
           " transition(s)\n";
    for (const MetalTransition &T : MB.Transitions) {
      Out += "    ==> ";
      if (T.PathSpecific) {
        Out += "{true=" + (T.TrueDest.IsVarState ? Spec->StateVarName + "." : "") +
               T.TrueDest.State + ", false=" +
               (T.FalseDest.IsVarState ? Spec->StateVarName + "." : "") +
               T.FalseDest.State + "}";
      } else {
        Out += (T.Normal.IsVarState ? Spec->StateVarName + "." : "") +
               T.Normal.State;
      }
      if (!T.Actions.empty())
        Out += formatString(" (+%zu action(s))", T.Actions.size());
      Out += '\n';
    }
  }
  return Out;
}
