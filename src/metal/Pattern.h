//===- metal/Pattern.h - Metal patterns and matching ------------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiled metal patterns (Section 4): base patterns are ASTs in an
/// extended version of C containing typed holes; they compose with && and ||
/// and with callouts (`${...}` escapes to registered predicates). The
/// special `$end_of_path$` pattern is recognised by the engine rather than
/// matched against points.
///
//===----------------------------------------------------------------------===//

#ifndef MC_METAL_PATTERN_H
#define MC_METAL_PATTERN_H

#include "cfront/AST.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mc {

class AnalysisContext;
struct VarState;

/// Hole-variable bindings produced by a match.
using Bindings = std::map<std::string, const Expr *, std::less<>>;

/// Environment a callout predicate sees.
struct CalloutEnv {
  const Stmt *Point = nullptr;
  const Bindings *B = nullptr;
  AnalysisContext *ACtx = nullptr; ///< Null outside engine execution.
  const VarState *Instance = nullptr; ///< The triggering instance, if any.
};

/// One argument of a callout invocation: a hole reference, a string literal
/// or an integer literal.
struct CalloutArg {
  enum ArgKind { Hole, String, Int } Kind = Hole;
  std::string Text;   ///< Hole name or string value.
  long long IntValue = 0;
};

/// A callout predicate: returns whether the match succeeds.
using CalloutFn =
    std::function<bool(const CalloutEnv &, const std::vector<CalloutArg> &)>;

/// Registry of named callout predicates ("xgcc provides an extensive library
/// of functions useful as callouts").
class CalloutRegistry {
public:
  /// The global registry, pre-populated with the builtin library.
  static CalloutRegistry &global();

  void add(const std::string &Name, CalloutFn Fn) {
    Fns[Name] = std::move(Fn);
  }
  const CalloutFn *find(const std::string &Name) const {
    auto It = Fns.find(Name);
    return It == Fns.end() ? nullptr : &It->second;
  }

private:
  std::map<std::string, CalloutFn> Fns;
};

/// A compiled pattern expression.
class Pattern {
public:
  enum PatKind {
    Base,      ///< A bracketed code fragment (expression or statement AST).
    And,       ///< Conjunction with shared bindings.
    Or,        ///< Disjunction; first alternative that matches wins.
    Callout,   ///< ${ fn(args) } — or the degenerate ${0} / ${1}.
    EndOfPath, ///< $end_of_path$ (engine-recognised).
  };

  static std::unique_ptr<Pattern> makeBase(const Stmt *Tree);
  static std::unique_ptr<Pattern> makeAnd(std::unique_ptr<Pattern> L,
                                          std::unique_ptr<Pattern> R);
  static std::unique_ptr<Pattern> makeOr(std::unique_ptr<Pattern> L,
                                         std::unique_ptr<Pattern> R);
  static std::unique_ptr<Pattern> makeCallout(std::string Name,
                                              std::vector<CalloutArg> Args);
  static std::unique_ptr<Pattern> makeEndOfPath();

  PatKind patKind() const { return Kind; }
  const Stmt *baseTree() const { return Tree; }
  const Pattern *lhs() const { return LHS.get(); }
  const Pattern *rhs() const { return RHS.get(); }
  const std::string &calloutName() const { return CalloutName; }

  /// True when this pattern (or any disjunct of it) is `$end_of_path$`.
  bool mentionsEndOfPath() const;

  /// Attempts to match at \p Point. \p B carries pre-bound holes in (the
  /// state variable is bound to the triggering instance's tree) and receives
  /// new bindings on success.
  bool match(const Stmt *Point, Bindings &B, const CalloutEnv &Env) const;

private:
  Pattern() = default;
  PatKind Kind = Base;
  const Stmt *Tree = nullptr;
  std::unique_ptr<Pattern> LHS, RHS;
  std::string CalloutName;
  std::vector<CalloutArg> Args;
};

/// Structural unification of a pattern tree against a target node with hole
/// binding. Exposed for tests.
bool unifyPattern(const Stmt *PatternTree, const Stmt *Target, Bindings &B);

/// Strips explicit casts (holes bind to the underlying tree).
const Expr *stripCasts(const Expr *E);

/// Installs the builtin callout library into \p Registry:
///   mc_is_call_to(fn, "name")  — fn (a call or callee) names "name"
///   mc_annotated(key)          — current point carries annotation key
///   mc_in_function("name")     — analysis is inside the named function
///   mc_is_null_constant(x)     — bound tree is a 0/NULL constant
///   mc_data_ge(v, n) / mc_data_le(v, n) — instance data counter compare
///   mc_true() / mc_false()     — the degenerate callouts ${1} / ${0}
void registerBuiltinCallouts(CalloutRegistry &Registry);

} // namespace mc

#endif // MC_METAL_PATTERN_H
