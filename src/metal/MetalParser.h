//===- metal/MetalParser.h - The metal language frontend --------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the metal checker language (Sections 2-4). The concrete
/// grammar mirrors the paper's Figure 1/Figure 3 syntax:
///
///   sm free_checker;
///   state decl any_pointer v;
///   decl any_fn_call fn;
///
///   start:
///     { kfree(v) } ==> v.freed
///   ;
///
///   v.freed:
///     { *v } ==> v.stop, { err("using %s after free!", mc_identifier(v)); }
///   | { kfree(v) } ==> v.stop, { err("double free of %s!", mc_identifier(v)); }
///   ;
///
/// Patterns are bracketed fragments of extended C, composable with && and ||
/// and with callouts `${ fn(args) }`. Destinations may be path-specific:
/// `==> { true = v.locked, false = v.stop }`. `$end_of_path$` is accepted as
/// a pattern. Actions are a sequence of calls: err/warn/note, set_global,
/// count_example/count_violation, annotate, path_annotate, kill_path,
/// data_set/data_inc/data_dec, and group.
///
//===----------------------------------------------------------------------===//

#ifndef MC_METAL_METALPARSER_H
#define MC_METAL_METALPARSER_H

#include "cfront/ASTContext.h"
#include "cfront/Parser.h"
#include "metal/Pattern.h"
#include "support/SourceManager.h"

#include <memory>
#include <string>
#include <vector>

namespace mc {

/// One interpreted action call.
struct MetalAction {
  std::string Fn;
  std::vector<CalloutArg> Args;
};

/// A transition destination: either a global state or `var.state`.
struct MetalDest {
  std::string State;
  bool IsVarState = false;
};

/// One parsed transition rule.
struct MetalTransition {
  std::unique_ptr<Pattern> Pat;
  MetalDest Normal;
  bool PathSpecific = false;
  MetalDest TrueDest, FalseDest;
  std::vector<MetalAction> Actions;
};

/// All transitions out of one state value.
struct MetalStateBlock {
  bool IsVarState = false;
  std::string StateName; ///< Without the leading "v.".
  std::vector<MetalTransition> Transitions;
};

/// A parsed metal program. Owns the ASTContext holding pattern trees.
class CheckerSpec {
public:
  std::string Name;
  PatternHoles Holes;
  std::string StateVarName; ///< The `state decl` variable; "" when absent.
  std::vector<MetalStateBlock> Blocks;

  /// Context owning the pattern ASTs and their types.
  ASTContext &patternContext() { return *PatternCtx; }

  CheckerSpec() : PatternCtx(std::make_unique<ASTContext>()) {}

  /// Rough size of the checker source, for the "checkers are 10-200 lines"
  /// statistic.
  unsigned SourceLines = 0;

private:
  std::unique_ptr<ASTContext> PatternCtx;
};

/// Parses metal source text. Diagnostics go to \p Diags (locations refer to
/// a buffer registered in \p SM under \p BufferName).
std::unique_ptr<CheckerSpec> parseMetal(const std::string &Text,
                                        const std::string &BufferName,
                                        SourceManager &SM,
                                        DiagnosticEngine &Diags);

} // namespace mc

#endif // MC_METAL_METALPARSER_H
