//===- metal/Pattern.cpp - Metal patterns and matching -----------------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "metal/Pattern.h"

#include "cfront/ASTUtils.h"
#include "metal/AnalysisContext.h"
#include "metal/State.h"

#include <cstdlib>

using namespace mc;

const Expr *mc::stripCasts(const Expr *E) {
  while (const auto *CE = dyn_cast_or_null<CastExpr>(E))
    E = CE->sub();
  return E;
}

namespace {

/// Checks whether \p Target can fill hole \p H (Table 1), ignoring binding
/// consistency (handled by the caller).
bool holeAccepts(const HoleExpr *H, const Expr *Target) {
  const Type *Ty = Target->type();
  switch (H->holeKind()) {
  case HoleExpr::AnyExpr:
    return true;
  case HoleExpr::AnyScalar:
    return Ty && Ty->isScalar();
  case HoleExpr::AnyPointer:
    return Ty && (Ty->isPointer() || Ty->isArray());
  case HoleExpr::AnyFnCall:
    return isa<CallExpr>(Target);
  case HoleExpr::AnyArguments:
    // Argument-list holes are only legal in argument position; a stray one
    // matches nothing.
    return false;
  case HoleExpr::CType:
    return typesCompatible(H->type(), Ty);
  }
  return false;
}

/// Binds hole \p H to \p Target, enforcing that repeated holes contain
/// equivalent ASTs (Section 4).
bool bindHole(const HoleExpr *H, const Expr *Target, Bindings &B) {
  const Expr *Stripped = stripCasts(Target);
  auto It = B.find(H->holeName());
  if (It != B.end())
    return exprEquivalent(It->second, Stripped);
  if (!holeAccepts(H, Target))
    return false;
  B.emplace(std::string(H->holeName()), Stripped);
  return true;
}

bool unifyExpr(const Expr *P, const Expr *T, Bindings &B);

bool unifyArgs(const CallExpr *PC, const CallExpr *TC, Bindings &B) {
  std::span<const Expr *const> PArgs = PC->args();
  std::span<const Expr *const> TArgs = TC->args();
  // A trailing `any_arguments` hole swallows the rest of the argument list;
  // bind it to the whole call so actions can render it.
  bool TrailingArgsHole =
      !PArgs.empty() && isa<HoleExpr>(PArgs.back()) &&
      cast<HoleExpr>(PArgs.back())->holeKind() == HoleExpr::AnyArguments;
  size_t Fixed = TrailingArgsHole ? PArgs.size() - 1 : PArgs.size();
  if (TrailingArgsHole ? TArgs.size() < Fixed : TArgs.size() != Fixed)
    return false;
  for (size_t I = 0; I != Fixed; ++I)
    if (!unifyExpr(PArgs[I], TArgs[I], B))
      return false;
  if (TrailingArgsHole) {
    const auto *H = cast<HoleExpr>(PArgs.back());
    auto It = B.find(H->holeName());
    if (It != B.end())
      return exprEquivalent(It->second, TC);
    B.emplace(std::string(H->holeName()), TC);
  }
  return true;
}

bool unifyExpr(const Expr *P, const Expr *T, Bindings &B) {
  if (!P || !T)
    return P == T;
  if (const auto *H = dyn_cast<HoleExpr>(P))
    return bindHole(H, T, B);
  if (P->kind() != T->kind())
    return false;
  switch (P->kind()) {
  case Stmt::SK_IntegerLiteral:
    return cast<IntegerLiteral>(P)->value() == cast<IntegerLiteral>(T)->value();
  case Stmt::SK_FloatLiteral:
    return cast<FloatLiteral>(P)->value() == cast<FloatLiteral>(T)->value();
  case Stmt::SK_CharLiteral:
    return cast<CharLiteral>(P)->value() == cast<CharLiteral>(T)->value();
  case Stmt::SK_StringLiteral:
    return cast<StringLiteral>(P)->value() == cast<StringLiteral>(T)->value();
  case Stmt::SK_DeclRef:
    // Pattern identifiers refer to "legal names in the scope of the code
    // base being checked" — they match by spelling.
    return cast<DeclRefExpr>(P)->name() == cast<DeclRefExpr>(T)->name();
  case Stmt::SK_Unary: {
    const auto *UP = cast<UnaryOperator>(P);
    const auto *UT = cast<UnaryOperator>(T);
    return UP->opcode() == UT->opcode() && unifyExpr(UP->sub(), UT->sub(), B);
  }
  case Stmt::SK_Binary: {
    const auto *BP = cast<BinaryOperator>(P);
    const auto *BT = cast<BinaryOperator>(T);
    return BP->opcode() == BT->opcode() &&
           unifyExpr(BP->lhs(), BT->lhs(), B) &&
           unifyExpr(BP->rhs(), BT->rhs(), B);
  }
  case Stmt::SK_ArraySubscript: {
    const auto *SP = cast<ArraySubscriptExpr>(P);
    const auto *ST = cast<ArraySubscriptExpr>(T);
    return unifyExpr(SP->base(), ST->base(), B) &&
           unifyExpr(SP->index(), ST->index(), B);
  }
  case Stmt::SK_Member: {
    const auto *MP = cast<MemberExpr>(P);
    const auto *MT = cast<MemberExpr>(T);
    return MP->isArrow() == MT->isArrow() && MP->member() == MT->member() &&
           unifyExpr(MP->base(), MT->base(), B);
  }
  case Stmt::SK_Call: {
    const auto *CP = cast<CallExpr>(P);
    const auto *CT = cast<CallExpr>(T);
    // `fn(args)` with fn : any_fn_call binds fn to the whole call.
    if (const auto *H = dyn_cast<HoleExpr>(CP->callee())) {
      if (H->holeKind() == HoleExpr::AnyFnCall) {
        auto It = B.find(H->holeName());
        if (It != B.end() && !exprEquivalent(It->second, CT))
          return false;
        Bindings Saved = B;
        B.emplace(std::string(H->holeName()), CT);
        if (unifyArgs(CP, CT, B))
          return true;
        B = std::move(Saved);
        return false;
      }
    }
    return unifyExpr(CP->callee(), CT->callee(), B) && unifyArgs(CP, CT, B);
  }
  case Stmt::SK_Cast: {
    const auto *CP = cast<CastExpr>(P);
    const auto *CT = cast<CastExpr>(T);
    return CP->type() == CT->type() && unifyExpr(CP->sub(), CT->sub(), B);
  }
  case Stmt::SK_Sizeof: {
    const auto *SP = cast<SizeofExpr>(P);
    const auto *ST = cast<SizeofExpr>(T);
    if (SP->argType())
      return SP->argType() == ST->argType();
    return ST->argExpr() && unifyExpr(SP->argExpr(), ST->argExpr(), B);
  }
  case Stmt::SK_Conditional: {
    const auto *CP = cast<ConditionalExpr>(P);
    const auto *CT = cast<ConditionalExpr>(T);
    return unifyExpr(CP->cond(), CT->cond(), B) &&
           unifyExpr(CP->thenExpr(), CT->thenExpr(), B) &&
           unifyExpr(CP->elseExpr(), CT->elseExpr(), B);
  }
  default:
    return false;
  }
}

bool unifyStmt(const Stmt *P, const Stmt *T, Bindings &B) {
  if (!P || !T)
    return P == T;
  const auto *PE = dyn_cast<Expr>(P);
  const auto *TE = dyn_cast<Expr>(T);
  if (PE || TE)
    return PE && TE && unifyExpr(PE, TE, B);
  if (P->kind() != T->kind())
    return false;
  switch (P->kind()) {
  case Stmt::SK_Return:
    return unifyStmt(cast<ReturnStmt>(P)->value(),
                     cast<ReturnStmt>(T)->value(), B);
  case Stmt::SK_Break:
  case Stmt::SK_Continue:
  case Stmt::SK_Null:
    return true;
  case Stmt::SK_Goto:
    return cast<GotoStmt>(P)->label() == cast<GotoStmt>(T)->label();
  case Stmt::SK_Decl: {
    // Declaration patterns match by declared type shape, one decl at a time.
    const auto *DP = cast<DeclStmt>(P);
    const auto *DT = cast<DeclStmt>(T);
    if (DP->decls().size() != DT->decls().size())
      return false;
    for (size_t I = 0; I != DP->decls().size(); ++I)
      if (!typesCompatible(DP->decls()[I]->type(), DT->decls()[I]->type()))
        return false;
    return true;
  }
  case Stmt::SK_If: {
    const auto *IP = cast<IfStmt>(P);
    const auto *IT = cast<IfStmt>(T);
    return unifyExpr(IP->cond(), IT->cond(), B) &&
           unifyStmt(IP->thenStmt(), IT->thenStmt(), B) &&
           unifyStmt(IP->elseStmt(), IT->elseStmt(), B);
  }
  case Stmt::SK_While: {
    const auto *WP = cast<WhileStmt>(P);
    const auto *WT = cast<WhileStmt>(T);
    return unifyExpr(WP->cond(), WT->cond(), B) &&
           unifyStmt(WP->body(), WT->body(), B);
  }
  case Stmt::SK_Compound: {
    const auto *CP = cast<CompoundStmt>(P);
    const auto *CT = cast<CompoundStmt>(T);
    if (CP->body().size() != CT->body().size())
      return false;
    for (size_t I = 0; I != CP->body().size(); ++I)
      if (!unifyStmt(CP->body()[I], CT->body()[I], B))
        return false;
    return true;
  }
  default:
    return false;
  }
}

} // namespace

bool mc::unifyPattern(const Stmt *PatternTree, const Stmt *Target,
                      Bindings &B) {
  return unifyStmt(PatternTree, Target, B);
}

//===----------------------------------------------------------------------===//
// Pattern
//===----------------------------------------------------------------------===//

std::unique_ptr<Pattern> Pattern::makeBase(const Stmt *Tree) {
  auto P = std::unique_ptr<Pattern>(new Pattern());
  P->Kind = Base;
  P->Tree = Tree;
  return P;
}

std::unique_ptr<Pattern> Pattern::makeAnd(std::unique_ptr<Pattern> L,
                                          std::unique_ptr<Pattern> R) {
  auto P = std::unique_ptr<Pattern>(new Pattern());
  P->Kind = And;
  P->LHS = std::move(L);
  P->RHS = std::move(R);
  return P;
}

std::unique_ptr<Pattern> Pattern::makeOr(std::unique_ptr<Pattern> L,
                                         std::unique_ptr<Pattern> R) {
  auto P = std::unique_ptr<Pattern>(new Pattern());
  P->Kind = Or;
  P->LHS = std::move(L);
  P->RHS = std::move(R);
  return P;
}

std::unique_ptr<Pattern> Pattern::makeCallout(std::string Name,
                                              std::vector<CalloutArg> Args) {
  auto P = std::unique_ptr<Pattern>(new Pattern());
  P->Kind = Callout;
  P->CalloutName = std::move(Name);
  P->Args = std::move(Args);
  return P;
}

std::unique_ptr<Pattern> Pattern::makeEndOfPath() {
  auto P = std::unique_ptr<Pattern>(new Pattern());
  P->Kind = EndOfPath;
  return P;
}

bool Pattern::mentionsEndOfPath() const {
  switch (Kind) {
  case EndOfPath:
    return true;
  case And:
  case Or:
    return LHS->mentionsEndOfPath() || RHS->mentionsEndOfPath();
  default:
    return false;
  }
}

bool Pattern::match(const Stmt *Point, Bindings &B,
                    const CalloutEnv &Env) const {
  switch (Kind) {
  case Base:
    return unifyPattern(Tree, Point, B);
  case And: {
    Bindings Saved = B;
    if (LHS->match(Point, B, Env) && RHS->match(Point, B, Env))
      return true;
    B = std::move(Saved);
    return false;
  }
  case Or: {
    Bindings Saved = B;
    if (LHS->match(Point, B, Env))
      return true;
    B = Saved;
    if (RHS->match(Point, B, Env))
      return true;
    B = std::move(Saved);
    return false;
  }
  case Callout: {
    const CalloutFn *Fn = CalloutRegistry::global().find(CalloutName);
    if (!Fn)
      return false;
    CalloutEnv E = Env;
    E.Point = Point;
    E.B = &B;
    return (*Fn)(E, Args);
  }
  case EndOfPath:
    return false; // Recognised by the engine, never by point matching.
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Builtin callout library
//===----------------------------------------------------------------------===//

namespace {

const Expr *resolveArg(const CalloutEnv &Env, const CalloutArg &Arg) {
  if (Arg.Kind != CalloutArg::Hole || !Env.B)
    return nullptr;
  auto It = Env.B->find(Arg.Text);
  return It == Env.B->end() ? nullptr : It->second;
}

} // namespace

void mc::registerBuiltinCallouts(CalloutRegistry &Registry) {
  Registry.add("mc_true", [](const CalloutEnv &, const auto &) {
    return true;
  });
  Registry.add("mc_false", [](const CalloutEnv &, const auto &) {
    return false;
  });
  Registry.add("mc_is_call_to",
               [](const CalloutEnv &Env, const std::vector<CalloutArg> &Args) {
                 if (Args.size() != 2 || Args[1].Kind != CalloutArg::String)
                   return false;
                 const Expr *E = resolveArg(Env, Args[0]);
                 if (!E)
                   E = dyn_cast_or_null<Expr>(Env.Point);
                 const auto *CE = dyn_cast_or_null<CallExpr>(E);
                 return CE && CE->calleeName() == Args[1].Text;
               });
  Registry.add("mc_annotated",
               [](const CalloutEnv &Env, const std::vector<CalloutArg> &Args) {
                 if (Args.empty() || Args[0].Kind != CalloutArg::String ||
                     !Env.ACtx || !Env.Point)
                   return false;
                 return Env.ACtx->annotation(Env.Point, Args[0].Text) !=
                        nullptr;
               });
  Registry.add("mc_in_function",
               [](const CalloutEnv &Env, const std::vector<CalloutArg> &Args) {
                 if (Args.empty() || Args[0].Kind != CalloutArg::String ||
                     !Env.ACtx || !Env.ACtx->currentFunction())
                   return false;
                 return Env.ACtx->currentFunction()->name() == Args[0].Text;
               });
  // Data-value counter comparisons (recursive-lock style checkers store a
  // decimal counter in the instance's data value).
  auto DataCmp = [](bool Ge) {
    return [Ge](const CalloutEnv &Env, const std::vector<CalloutArg> &Args) {
      if (Args.empty() || !Env.Instance)
        return false;
      long long N = Args.back().Kind == CalloutArg::Int ? Args.back().IntValue
                                                        : 0;
      std::string Text(symbolText(Env.Instance->Data));
      long long D = Text.empty() ? 0 : std::strtoll(Text.c_str(), nullptr, 10);
      return Ge ? D >= N : D <= N;
    };
  };
  Registry.add("mc_data_ge", DataCmp(true));
  Registry.add("mc_data_le", DataCmp(false));
  Registry.add("mc_is_branch_condition",
               [](const CalloutEnv &Env, const std::vector<CalloutArg> &) {
                 return Env.ACtx && Env.Point &&
                        Env.ACtx->branchCondition() == Env.Point;
               });
  Registry.add("mc_is_null_constant",
               [](const CalloutEnv &Env, const std::vector<CalloutArg> &Args) {
                 if (Args.empty())
                   return false;
                 const Expr *E = stripCasts(resolveArg(Env, Args[0]));
                 const auto *IL = dyn_cast_or_null<IntegerLiteral>(E);
                 return IL && IL->value() == 0;
               });
}

CalloutRegistry &CalloutRegistry::global() {
  static CalloutRegistry *Registry = [] {
    auto *R = new CalloutRegistry();
    registerBuiltinCallouts(*R);
    return R;
  }();
  return *Registry;
}
