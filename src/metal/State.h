//===- metal/State.h - Extension state model --------------------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extension state model of Sections 3 and 5.1. An extension's state is
/// an `SMInstance`: one global state value plus a list of variable-specific
/// instances (`VarState`), each attaching a state value and an arbitrary
/// data value to a program tree. Viewed from the engine, the state is a set
/// of state tuples `(gstate, v : tree -> value)`; `StateTuple` is that
/// canonical, comparable form used by block summaries and caches.
///
//===----------------------------------------------------------------------===//

#ifndef MC_METAL_STATE_H
#define MC_METAL_STATE_H

#include "cfront/AST.h"
#include "cfront/ASTUtils.h"

#include <string>
#include <vector>

namespace mc {

/// State values are small integers interned per checker.
/// Two values are reserved for every checker.
enum ReservedState : int {
  /// The sink state: an instance transitioned here is deleted (Section 2.1).
  StateStop = 0,
  /// The "know nothing about this tree" marker used as the source of add
  /// edges (Section 5.2). Never stored in a live instance.
  StateUnknown = -1,
};

/// A variable-specific instance: one state machine's variable component.
struct VarState {
  /// The program object carrying the state — "can be any tree in the code".
  const Expr *Tree = nullptr;
  /// Canonical identity of Tree (exprKey); equivalence across path copies.
  std::string TreeKey;
  /// Interned state value (> 0 for live states).
  int Value = StateStop;
  /// Extension-managed data value, value-semantics bytes (the paper's
  /// "C structure of arbitrary size"); participates in tuple identity.
  std::string Data;
  /// Creation point: an instance cannot trigger a transition at the
  /// statement that created it (Section 3.2).
  const Stmt *CreatedAt = nullptr;
  /// Synonym group id; instances in one group mirror transitions
  /// (Section 8, "Synonyms"). 0 = no group.
  unsigned SynonymGroup = 0;
  /// Length of the assignment chain that produced this instance (degree of
  /// indirection, used by ranking criterion 3).
  unsigned IndirectionDepth = 0;
  /// File-scope variables are temporarily inactivated while the analysis is
  /// in another file (Section 6.1).
  bool Inactive = false;
  /// Where the property being tracked started (for ranking's distance).
  SourceLoc OriginLoc;
  /// The analysis fact that started tracking (e.g. the freeing function's
  /// name); errors sharing a fact are grouped for ranking (Section 9).
  /// Metadata only: not part of tuple identity.
  std::string FactKey;
  /// Set when the instance crossed a function boundary (ranking criterion 4).
  bool Interprocedural = false;
  /// Number of conditionals traversed while this instance was live.
  unsigned CondsCrossed = 0;

  bool live() const { return Value != StateStop; }
};

/// An extension's full state: the paper's `sm_instance` structure.
struct SMInstance {
  int GState = 0;
  std::string GData;
  std::vector<VarState> ActiveVars;

  /// Removes stopped instances.
  void sweepStopped() {
    std::erase_if(ActiveVars, [](const VarState &VS) { return !VS.live(); });
  }

  /// Finds the live instance attached to a tree equivalent to \p Key.
  VarState *findByKey(const std::string &Key) {
    for (VarState &VS : ActiveVars)
      if (VS.live() && VS.TreeKey == Key)
        return &VS;
    return nullptr;
  }
  const VarState *findByKey(const std::string &Key) const {
    return const_cast<SMInstance *>(this)->findByKey(Key);
  }
};

/// One comparable state tuple `(gstate, v : tree -> value)` (Section 5.2).
/// The placeholder tuple `(gstate, <>)` has an empty TreeKey.
struct StateTuple {
  int GState = 0;
  std::string TreeKey; ///< Empty = the placeholder "<>".
  int Value = StateStop;
  std::string Data;

  bool isPlaceholder() const { return TreeKey.empty(); }

  auto operator<=>(const StateTuple &) const = default;
};

/// Decomposes \p SM into its set of state tuples. When there are no live
/// variable-specific instances the set is the single placeholder tuple, so
/// the state always contains at least one tuple (Section 5.3).
std::vector<StateTuple> tuplesOf(const SMInstance &SM);

/// Renders a tuple in the paper's notation, e.g. "(start, v:p->freed)".
std::string tupleStr(const StateTuple &T,
                     const std::function<std::string(int)> &StateName,
                     std::string_view VarName = "v");

} // namespace mc

#endif // MC_METAL_STATE_H
