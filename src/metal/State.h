//===- metal/State.h - Extension state model --------------------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extension state model of Sections 3 and 5.1. An extension's state is
/// an `SMInstance`: one global state value plus a list of variable-specific
/// instances (`VarState`), each attaching a state value and an arbitrary
/// data value to a program tree. Viewed from the engine, the state is a set
/// of state tuples `(gstate, v : tree -> value)`; `StateTuple` is that
/// canonical, comparable form used by block summaries and caches.
///
/// Tree keys, data values and fact keys are interned symbols: 32-bit ids
/// into the process-wide `support/Interner` table (0 = the empty string).
/// This makes `VarState` and `StateTuple` flat, trivially-copyable structs
/// — forking a `PathState` at a branch is a memcpy, and tuple equality is
/// a handful of integer compares. Ordering comparisons (`operator<`) fall
/// back to the interned text so every ordered container iterates in the
/// same byte order as the historical string representation; report output
/// is therefore independent of interning order (and of worker count).
///
//===----------------------------------------------------------------------===//

#ifndef MC_METAL_STATE_H
#define MC_METAL_STATE_H

#include "cfront/AST.h"
#include "cfront/ASTUtils.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mc {

class BumpPtrAllocator;

/// Interns \p S into the global symbol table, returning its id. The empty
/// string maps to 0 without touching the table.
uint32_t symbolize(std::string_view S);

/// The stable text of symbol \p Sym; 0 yields "".
std::string_view symbolText(uint32_t Sym);

/// Id of an already-interned string; 0 when it was never interned (or is
/// empty). Use for probe-only paths so misses don't grow the table.
uint32_t lookupSymbol(std::string_view S);

/// Lexicographic comparison of two symbols by their text (NOT by id — ids
/// are assigned in first-intern order, which varies with worker schedule).
bool symbolTextLess(uint32_t A, uint32_t B);

/// Comparator for ordered containers keyed by symbol whose iteration order
/// reaches report bytes: iterates in text order, matching the historical
/// string-keyed containers byte for byte.
struct SymbolTextLess {
  bool operator()(uint32_t A, uint32_t B) const { return symbolTextLess(A, B); }
};

/// State values are small integers interned per checker.
/// Two values are reserved for every checker.
enum ReservedState : int {
  /// The sink state: an instance transitioned here is deleted (Section 2.1).
  StateStop = 0,
  /// The "know nothing about this tree" marker used as the source of add
  /// edges (Section 5.2). Never stored in a live instance.
  StateUnknown = -1,
};

/// A variable-specific instance: one state machine's variable component.
/// Trivially copyable — all text fields are interned symbols.
struct VarState {
  /// The program object carrying the state — "can be any tree in the code".
  const Expr *Tree = nullptr;
  /// Canonical identity of Tree (interned exprKey); equivalence across path
  /// copies.
  uint32_t TreeKey = 0;
  /// Interned state value (> 0 for live states).
  int Value = StateStop;
  /// Extension-managed data value, an interned symbol (the paper's
  /// "C structure of arbitrary size"); participates in tuple identity.
  uint32_t Data = 0;
  /// Creation point: an instance cannot trigger a transition at the
  /// statement that created it (Section 3.2).
  const Stmt *CreatedAt = nullptr;
  /// Synonym group id; instances in one group mirror transitions
  /// (Section 8, "Synonyms"). 0 = no group.
  unsigned SynonymGroup = 0;
  /// Length of the assignment chain that produced this instance (degree of
  /// indirection, used by ranking criterion 3).
  unsigned IndirectionDepth = 0;
  /// File-scope variables are temporarily inactivated while the analysis is
  /// in another file (Section 6.1).
  bool Inactive = false;
  /// Where the property being tracked started (for ranking's distance).
  SourceLoc OriginLoc;
  /// The analysis fact that started tracking (e.g. the freeing function's
  /// name, interned); errors sharing a fact are grouped for ranking
  /// (Section 9). Metadata only: not part of tuple identity.
  uint32_t FactKey = 0;
  /// Set when the instance crossed a function boundary (ranking criterion 4).
  bool Interprocedural = false;
  /// Number of conditionals traversed while this instance was live.
  unsigned CondsCrossed = 0;

  bool live() const { return Value != StateStop; }
};

/// An extension's full state: the paper's `sm_instance` structure.
struct SMInstance {
  int GState = 0;
  std::string GData;
  std::vector<VarState> ActiveVars;

  /// Removes stopped instances.
  void sweepStopped() {
    std::erase_if(ActiveVars, [](const VarState &VS) { return !VS.live(); });
  }

  /// Finds the live instance attached to a tree whose key symbol is
  /// \p KeySym. 0 never matches (no instance has an empty key).
  VarState *findByKey(uint32_t KeySym) {
    if (!KeySym)
      return nullptr;
    for (VarState &VS : ActiveVars)
      if (VS.live() && VS.TreeKey == KeySym)
        return &VS;
    return nullptr;
  }
  const VarState *findByKey(uint32_t KeySym) const {
    return const_cast<SMInstance *>(this)->findByKey(KeySym);
  }

  /// Text-keyed lookup: probes the symbol table without interning, so a key
  /// that was never tracked anywhere stays out of the table.
  VarState *findByKey(std::string_view Key) {
    return findByKey(lookupSymbol(Key));
  }
  const VarState *findByKey(std::string_view Key) const {
    return const_cast<SMInstance *>(this)->findByKey(Key);
  }
};

/// One comparable state tuple `(gstate, v : tree -> value)` (Section 5.2).
/// The placeholder tuple `(gstate, <>)` has TreeKey 0. 16 flat bytes;
/// equality is integer compares, ordering falls back to symbol text so
/// ordered sets iterate exactly as the string representation did.
struct StateTuple {
  int GState = 0;
  uint32_t TreeKey = 0; ///< 0 = the placeholder "<>".
  int Value = StateStop;
  uint32_t Data = 0;

  bool isPlaceholder() const { return TreeKey == 0; }

  friend bool operator==(const StateTuple &, const StateTuple &) = default;
  bool operator<(const StateTuple &RHS) const;
};

/// Hash over the flat fields; symbols are canonical, so equal tuples hash
/// equal regardless of interning order.
struct StateTupleHash {
  size_t operator()(const StateTuple &T) const {
    uint64_t H = uint64_t(uint32_t(T.GState)) * 0x9e3779b97f4a7c15ull;
    H ^= (uint64_t(T.TreeKey) << 32 | T.Data) * 0xff51afd7ed558ccdull;
    H ^= uint64_t(uint32_t(T.Value)) * 0xc4ceb9fe1a85ec53ull;
    return size_t(H ^ (H >> 29));
  }
};

/// A borrowed, contiguous run of tuples (typically arena-allocated for the
/// lifetime of one traversal frame).
struct TupleSpan {
  const StateTuple *Tuples = nullptr;
  uint32_t Count = 0;

  const StateTuple *begin() const { return Tuples; }
  const StateTuple *end() const { return Tuples + Count; }
  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  const StateTuple &operator[](size_t I) const { return Tuples[I]; }
  const StateTuple &front() const { return Tuples[0]; }
};

/// Decomposes \p SM into its set of state tuples. When there are no live
/// variable-specific instances the set is the single placeholder tuple, so
/// the state always contains at least one tuple (Section 5.3).
std::vector<StateTuple> tuplesOf(const SMInstance &SM);

/// As above, but the tuples live in \p Arena (freed wholesale with it):
/// the block-traversal hot path uses this to avoid a heap vector per visit.
TupleSpan tuplesOf(const SMInstance &SM, BumpPtrAllocator &Arena);

/// Renders a tuple in the paper's notation, e.g. "(start, v:p->freed)".
std::string tupleStr(const StateTuple &T,
                     const std::function<std::string(int)> &StateName,
                     std::string_view VarName = "v");

} // namespace mc

#endif // MC_METAL_STATE_H
