//===- metal/Checker.h - The checker (extension) interface ------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extension interface the engine executes. Checkers come in two
/// flavours with identical standing: MetalChecker interprets a parsed metal
/// program (Sections 2-4), and native checkers subclass Checker directly
/// (the "C code" escape hatch taken to its logical end). The engine requires
/// only determinism and per-instance independence (Section 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef MC_METAL_CHECKER_H
#define MC_METAL_CHECKER_H

#include "metal/AnalysisContext.h"

#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mc {

class DispatchIndex;

/// Base class for all checkers.
class Checker {
public:
  virtual ~Checker();

  /// The checker's name (the `sm <name>;` header in metal).
  virtual std::string_view name() const = 0;

  /// Called at every program point (expression node or statement tree) in
  /// execution order. The checker inspects/mutates state through \p ACtx.
  /// MUST be deterministic: the same point in the same state tuple must
  /// always produce the same transformation (Section 5.1).
  virtual void checkPoint(const Stmt *Point, AnalysisContext &ACtx) = 0;

  /// Called when an instance permanently leaves scope or a root path ends —
  /// the `$end_of_path$` pattern (Section 3.2). \p VS is null for
  /// program-termination (whole-path) end.
  virtual void checkEndOfPath(VarState *VS, AnalysisContext &ACtx);

  /// The checker's compiled pattern-dispatch index, or null when it has
  /// declared no syntactic triggers. The engine uses it to skip blocks none
  /// of whose points could fire a transition; soundness contract: if
  /// mayMatch() rejects every point of a block, checkPoint() must be a no-op
  /// throughout the block. Must be immutable once analysis starts (the
  /// instance is shared across worker engines).
  virtual const DispatchIndex *dispatchIndex() const { return nullptr; }

  //===--------------------------------------------------------------------===//
  // Engine behaviour knobs (Section 8 analyses run "transparently unless a
  // checker requests otherwise"; Table 2 lets the extension writer pick
  // by-value vs by-reference restore).
  //===--------------------------------------------------------------------===//

  /// Kill instances whose tree mentions a redefined variable.
  virtual bool enableAutoKill() const { return true; }
  /// Mirror state across assignment synonyms.
  virtual bool enableSynonyms() const { return true; }
  /// Restore argument state from the callee on return (by-reference rows of
  /// Table 2); false keeps the caller's state unchanged (by-value).
  virtual bool restoreArgsByReference() const { return true; }

  //===--------------------------------------------------------------------===//
  // State-name interning
  //===--------------------------------------------------------------------===//

  /// Interns \p Name, returning its id (>0). "stop" is StateStop.
  int internState(std::string_view Name);
  /// Id for an already-interned name; StateStop when unknown.
  int stateId(std::string_view Name) const;
  /// Printable name of \p Id ("stop", "unknown" for the reserved values).
  std::string stateName(int Id) const;

  /// The global state the analysis starts in (the first state the checker
  /// interned, by convention "start").
  virtual int initialGlobalState() const;

  //===--------------------------------------------------------------------===//
  // Identity fingerprint (incremental summary-store keys)
  //===--------------------------------------------------------------------===//

  /// A stable content fingerprint of this checker: summary-store keys embed
  /// it so cached per-root results invalidate when the checker changes. The
  /// default is a hash of the checker's name — correct for built-in native
  /// checkers, whose behaviour only changes with the binary (the store also
  /// keys on the format version). Factories that compile checkers from
  /// source must salt with the source text (compileMetalChecker does).
  uint64_t fingerprint() const;

  /// Mixes \p Salt into the fingerprint. Call before analysis starts.
  void setFingerprintSalt(uint64_t Salt) { FingerprintSalt = Salt; }

private:
  uint64_t FingerprintSalt = 0;


  /// One checker instance is shared by every worker-engine in a sharded run;
  /// interning at analysis time (e.g. metal set_global) must be synchronized.
  mutable std::mutex StateMu;
  std::vector<std::string> StateNames; ///< Index 0 unused ("stop").
  std::map<std::string, int, std::less<>> StateIds;
};

} // namespace mc

#endif // MC_METAL_CHECKER_H
