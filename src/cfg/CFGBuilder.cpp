//===- cfg/CFGBuilder.cpp - CFG construction --------------------------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFG.h"

#include "cfront/ASTUtils.h"

#include <map>

using namespace mc;

namespace {

/// Returns true when \p E contains a call to a followable function.
bool exprHasFollowableCall(const Expr *E, const CallTargetPredicate *Pred) {
  if (!E || !Pred)
    return false;
  if (const auto *CE = dyn_cast<CallExpr>(E))
    if (const auto *DRE = dyn_cast<DeclRefExpr>(CE->callee()))
      if (const auto *FD = dyn_cast<FunctionDecl>(DRE->decl()))
        if (Pred->isFollowable(FD))
          return true;
  bool Found = false;
  forEachChild(E, [&](const Expr *Child) {
    if (!Found && exprHasFollowableCall(Child, Pred))
      Found = true;
  });
  return Found;
}

bool stmtHasFollowableCall(const Stmt *S, const CallTargetPredicate *Pred) {
  if (!S || !Pred)
    return false;
  if (const auto *E = dyn_cast<Expr>(S))
    return exprHasFollowableCall(E, Pred);
  if (const auto *DS = dyn_cast<DeclStmt>(S)) {
    for (const VarDecl *VD : DS->decls())
      if (exprHasFollowableCall(VD->init(), Pred))
        return true;
    return false;
  }
  if (const auto *RS = dyn_cast<ReturnStmt>(S))
    return exprHasFollowableCall(RS->value(), Pred);
  return false;
}

class CFGBuilder {
public:
  CFGBuilder(CFG &G, const CallTargetPredicate *Pred) : G(G), Pred(Pred) {}

  void run(const FunctionDecl *Fn) {
    BasicBlock *EntryB = G.createBlock(BasicBlock::Entry);
    ExitB = G.createBlock(BasicBlock::Exit);
    G.setEntry(EntryB);
    G.setExit(ExitB);
    Cur = G.createBlock();
    EntryB->addSucc(Cur);
    visit(Fn->body());
    if (Cur)
      Cur->addSucc(ExitB);
    // Resolve forward gotos.
    for (auto &[Block, Label] : PendingGotos) {
      auto It = Labels.find(Label);
      if (It != Labels.end())
        Block->addSucc(It->second);
      else
        Block->addSucc(ExitB); // Unknown label: treat as leaving the function.
    }
  }

private:
  BasicBlock *fresh() { return G.createBlock(); }

  /// Ensures there is a current block (statements after a return/break start
  /// an unreachable block, which the DFS simply never visits).
  BasicBlock *require() {
    if (!Cur)
      Cur = fresh();
    return Cur;
  }

  /// Appends a leaf statement tree, splitting the block when the tree
  /// contains a followable call (supergraph callsite/return-site split).
  void appendLeaf(const Stmt *S) {
    BasicBlock *B = require();
    B->appendStmt(S);
    if (stmtHasFollowableCall(S, Pred)) {
      B->setBlockKind(BasicBlock::CallSite);
      BasicBlock *ReturnSite = fresh();
      B->addSucc(ReturnSite);
      Cur = ReturnSite;
    }
  }

  void visit(const Stmt *S) {
    if (!S)
      return;
    if (const auto *E = dyn_cast<Expr>(S)) {
      appendLeaf(E);
      return;
    }
    switch (S->kind()) {
    case Stmt::SK_Compound:
      for (const Stmt *Sub : cast<CompoundStmt>(S)->body())
        visit(Sub);
      return;
    case Stmt::SK_Decl:
      appendLeaf(S);
      return;
    case Stmt::SK_Null:
      return;
    case Stmt::SK_Return:
      appendLeaf(S);
      if (Cur) {
        Cur->addSucc(ExitB);
        Cur = nullptr;
      }
      return;
    case Stmt::SK_If: {
      const auto *IS = cast<IfStmt>(S);
      BasicBlock *CondB = require();
      CondB->appendStmt(IS->cond());
      CondB->setCondition(IS->cond());
      BasicBlock *ThenB = fresh();
      BasicBlock *JoinB = fresh();
      CondB->addSucc(ThenB, CFGEdge::True);
      BasicBlock *ElseB = nullptr;
      if (IS->elseStmt()) {
        ElseB = fresh();
        CondB->addSucc(ElseB, CFGEdge::False);
      } else {
        CondB->addSucc(JoinB, CFGEdge::False);
      }
      Cur = ThenB;
      visit(IS->thenStmt());
      if (Cur)
        Cur->addSucc(JoinB);
      if (ElseB) {
        Cur = ElseB;
        visit(IS->elseStmt());
        if (Cur)
          Cur->addSucc(JoinB);
      }
      Cur = JoinB;
      return;
    }
    case Stmt::SK_While: {
      const auto *WS = cast<WhileStmt>(S);
      BasicBlock *Header = fresh();
      BasicBlock *BodyB = fresh();
      BasicBlock *After = fresh();
      require()->addSucc(Header);
      Header->appendStmt(WS->cond());
      Header->setCondition(WS->cond());
      Header->addSucc(BodyB, CFGEdge::True);
      Header->addSucc(After, CFGEdge::False);
      BreakTargets.push_back(After);
      ContinueTargets.push_back(Header);
      Cur = BodyB;
      visit(WS->body());
      if (Cur)
        Cur->addSucc(Header);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      Cur = After;
      return;
    }
    case Stmt::SK_Do: {
      const auto *DS = cast<DoStmt>(S);
      BasicBlock *BodyB = fresh();
      BasicBlock *CondB = fresh();
      BasicBlock *After = fresh();
      require()->addSucc(BodyB);
      BreakTargets.push_back(After);
      ContinueTargets.push_back(CondB);
      Cur = BodyB;
      visit(DS->body());
      if (Cur)
        Cur->addSucc(CondB);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      CondB->appendStmt(DS->cond());
      CondB->setCondition(DS->cond());
      CondB->addSucc(BodyB, CFGEdge::True);
      CondB->addSucc(After, CFGEdge::False);
      Cur = After;
      return;
    }
    case Stmt::SK_For: {
      const auto *FS = cast<ForStmt>(S);
      if (FS->init())
        visit(FS->init());
      BasicBlock *Header = fresh();
      BasicBlock *BodyB = fresh();
      BasicBlock *IncB = fresh();
      BasicBlock *After = fresh();
      require()->addSucc(Header);
      if (FS->cond()) {
        Header->appendStmt(FS->cond());
        Header->setCondition(FS->cond());
        Header->addSucc(BodyB, CFGEdge::True);
        Header->addSucc(After, CFGEdge::False);
      } else {
        Header->addSucc(BodyB);
      }
      BreakTargets.push_back(After);
      ContinueTargets.push_back(IncB);
      Cur = BodyB;
      visit(FS->body());
      if (Cur)
        Cur->addSucc(IncB);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      Cur = IncB;
      if (FS->inc())
        appendLeaf(FS->inc());
      require()->addSucc(Header);
      Cur = After;
      return;
    }
    case Stmt::SK_Switch: {
      const auto *SS = cast<SwitchStmt>(S);
      BasicBlock *Head = require();
      Head->appendStmt(SS->cond());
      Head->setCondition(SS->cond());
      BasicBlock *After = fresh();
      SwitchCtx Saved = Switch;
      Switch = SwitchCtx{Head, false};
      BreakTargets.push_back(After);
      Cur = nullptr; // Code before the first case label is unreachable.
      visit(SS->body());
      if (Cur)
        Cur->addSucc(After);
      if (!Switch.SeenDefault)
        Head->addSucc(After, CFGEdge::Default);
      BreakTargets.pop_back();
      Switch = Saved;
      Cur = After;
      return;
    }
    case Stmt::SK_Case: {
      const auto *CS = cast<CaseStmt>(S);
      BasicBlock *ArmB = fresh();
      if (Switch.Head)
        Switch.Head->addSucc(ArmB, CFGEdge::Case, CS->value());
      if (Cur)
        Cur->addSucc(ArmB); // Fallthrough from the previous arm.
      Cur = ArmB;
      visit(CS->sub());
      return;
    }
    case Stmt::SK_Default: {
      const auto *DS = cast<DefaultStmt>(S);
      BasicBlock *ArmB = fresh();
      if (Switch.Head) {
        Switch.Head->addSucc(ArmB, CFGEdge::Default);
        Switch.SeenDefault = true;
      }
      if (Cur)
        Cur->addSucc(ArmB);
      Cur = ArmB;
      visit(DS->sub());
      return;
    }
    case Stmt::SK_Break:
      if (Cur && !BreakTargets.empty()) {
        Cur->addSucc(BreakTargets.back());
        Cur = nullptr;
      }
      return;
    case Stmt::SK_Continue:
      if (Cur && !ContinueTargets.empty()) {
        Cur->addSucc(ContinueTargets.back());
        Cur = nullptr;
      }
      return;
    case Stmt::SK_Goto: {
      const auto *GS = cast<GotoStmt>(S);
      BasicBlock *B = require();
      auto It = Labels.find(GS->label());
      if (It != Labels.end())
        B->addSucc(It->second);
      else
        PendingGotos.emplace_back(B, GS->label());
      Cur = nullptr;
      return;
    }
    case Stmt::SK_Label: {
      const auto *LS = cast<LabelStmt>(S);
      BasicBlock *LabelB = fresh();
      Labels[LS->name()] = LabelB;
      if (Cur)
        Cur->addSucc(LabelB);
      Cur = LabelB;
      visit(LS->sub());
      return;
    }
    default:
      return;
    }
  }

  struct SwitchCtx {
    BasicBlock *Head = nullptr;
    bool SeenDefault = false;
  };

  CFG &G;
  const CallTargetPredicate *Pred;
  BasicBlock *Cur = nullptr;
  BasicBlock *ExitB = nullptr;
  std::vector<BasicBlock *> BreakTargets;
  std::vector<BasicBlock *> ContinueTargets;
  SwitchCtx Switch;
  std::map<std::string_view, BasicBlock *> Labels;
  std::vector<std::pair<BasicBlock *, std::string_view>> PendingGotos;
};

} // namespace

std::unique_ptr<CFG> mc::buildCFG(const FunctionDecl *Fn,
                                  const CallTargetPredicate *FollowableCalls) {
  assert(Fn && Fn->isDefined() && "cannot build a CFG without a body");
  auto G = std::make_unique<CFG>(Fn);
  CFGBuilder Builder(*G, FollowableCalls);
  Builder.run(Fn);
  return G;
}
