//===- cfg/CallGraph.cpp - Call graph and supergraph roots ------------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/CallGraph.h"

#include "cfront/ASTUtils.h"

#include <set>

using namespace mc;

namespace {

void collectCallsInExpr(const Expr *E,
                        std::vector<const FunctionDecl *> &Out) {
  if (!E)
    return;
  if (const auto *CE = dyn_cast<CallExpr>(E))
    if (const auto *DRE = dyn_cast<DeclRefExpr>(CE->callee()))
      if (const auto *FD = dyn_cast<FunctionDecl>(DRE->decl()))
        Out.push_back(FD);
  forEachChild(E, [&](const Expr *Child) { collectCallsInExpr(Child, Out); });
}

void collectCallsInStmt(const Stmt *S,
                        std::vector<const FunctionDecl *> &Out) {
  if (!S)
    return;
  if (const auto *E = dyn_cast<Expr>(S)) {
    collectCallsInExpr(E, Out);
    return;
  }
  switch (S->kind()) {
  case Stmt::SK_Compound:
    for (const Stmt *Sub : cast<CompoundStmt>(S)->body())
      collectCallsInStmt(Sub, Out);
    return;
  case Stmt::SK_Decl:
    for (const VarDecl *VD : cast<DeclStmt>(S)->decls())
      collectCallsInExpr(VD->init(), Out);
    return;
  case Stmt::SK_If: {
    const auto *IS = cast<IfStmt>(S);
    collectCallsInExpr(IS->cond(), Out);
    collectCallsInStmt(IS->thenStmt(), Out);
    collectCallsInStmt(IS->elseStmt(), Out);
    return;
  }
  case Stmt::SK_While:
    collectCallsInExpr(cast<WhileStmt>(S)->cond(), Out);
    collectCallsInStmt(cast<WhileStmt>(S)->body(), Out);
    return;
  case Stmt::SK_Do:
    collectCallsInStmt(cast<DoStmt>(S)->body(), Out);
    collectCallsInExpr(cast<DoStmt>(S)->cond(), Out);
    return;
  case Stmt::SK_For: {
    const auto *FS = cast<ForStmt>(S);
    collectCallsInStmt(FS->init(), Out);
    collectCallsInExpr(FS->cond(), Out);
    collectCallsInExpr(FS->inc(), Out);
    collectCallsInStmt(FS->body(), Out);
    return;
  }
  case Stmt::SK_Switch:
    collectCallsInExpr(cast<SwitchStmt>(S)->cond(), Out);
    collectCallsInStmt(cast<SwitchStmt>(S)->body(), Out);
    return;
  case Stmt::SK_Case:
    collectCallsInExpr(cast<CaseStmt>(S)->value(), Out);
    collectCallsInStmt(cast<CaseStmt>(S)->sub(), Out);
    return;
  case Stmt::SK_Default:
    collectCallsInStmt(cast<DefaultStmt>(S)->sub(), Out);
    return;
  case Stmt::SK_Return:
    collectCallsInExpr(cast<ReturnStmt>(S)->value(), Out);
    return;
  case Stmt::SK_Label:
    collectCallsInStmt(cast<LabelStmt>(S)->sub(), Out);
    return;
  default:
    return;
  }
}

} // namespace

void CallGraph::collectCallees(const FunctionDecl *Fn) {
  std::vector<const FunctionDecl *> Calls;
  collectCallsInStmt(Fn->body(), Calls);
  Node &N = Nodes[Fn];
  N.Fn = Fn;
  std::set<const FunctionDecl *> Seen;
  for (const FunctionDecl *Callee : Calls) {
    if (!Seen.insert(Callee).second)
      continue;
    N.Callees.push_back(Callee);
    Node &CalleeNode = Nodes[Callee];
    CalleeNode.Fn = Callee;
    if (Callee->isDefined() && Callee != Fn)
      ++CalleeNode.NumCallers;
  }
}

void CallGraph::markReachable(
    const FunctionDecl *Fn, std::map<const FunctionDecl *, bool> &Reached) const {
  auto It = Reached.find(Fn);
  if (It != Reached.end() && It->second)
    return;
  Reached[Fn] = true;
  auto NodeIt = Nodes.find(Fn);
  if (NodeIt == Nodes.end())
    return;
  for (const FunctionDecl *Callee : NodeIt->second.Callees)
    if (Callee->isDefined())
      markReachable(Callee, Reached);
}

void CallGraph::computeRoots() {
  Roots.clear();
  std::map<const FunctionDecl *, bool> Reached;
  for (const FunctionDecl *Fn : Defined) {
    if (Nodes[Fn].NumCallers == 0) {
      Roots.push_back(Fn);
      markReachable(Fn, Reached);
    }
  }
  // Recursive chains with no outside callers: break them arbitrarily by
  // promoting the first unreached function (parse order) to a root, until
  // everything is covered.
  for (const FunctionDecl *Fn : Defined) {
    if (!Reached[Fn]) {
      Roots.push_back(Fn);
      markReachable(Fn, Reached);
    }
  }
}

void CallGraph::build(const ASTContext &Ctx) {
  Nodes.clear();
  CFGs.clear();
  Defined.clear();
  for (const FunctionDecl *Fn : Ctx.functions()) {
    Nodes[Fn].Fn = Fn;
    if (Fn->isDefined())
      Defined.push_back(Fn);
  }
  for (const FunctionDecl *Fn : Defined)
    collectCallees(Fn);
  computeRoots();
  for (const FunctionDecl *Fn : Defined)
    CFGs[Fn] = buildCFG(Fn, this);
}

unsigned CallGraph::numCFGBlocks() const {
  unsigned N = 0;
  for (const auto &[Fn, G] : CFGs)
    N += G->numBlocks();
  return N;
}
