//===- cfg/CallGraph.h - Call graph and supergraph roots --------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Call graph over a source base. "Functions with no callers are considered
/// roots. When computing roots, recursive call chains are broken
/// arbitrarily." (Section 6, step 2.) Also owns the per-function CFGs — this
/// pair is the supergraph the interprocedural engine traverses.
///
//===----------------------------------------------------------------------===//

#ifndef MC_CFG_CALLGRAPH_H
#define MC_CFG_CALLGRAPH_H

#include "cfg/CFG.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mc {

/// Call graph + CFGs for every defined function.
class CallGraph : public CallTargetPredicate {
public:
  struct Node {
    const FunctionDecl *Fn = nullptr;
    std::vector<const FunctionDecl *> Callees; ///< Deduplicated, in call order.
    unsigned NumCallers = 0; ///< Callers among defined functions.
  };

  /// Builds the graph and all CFGs for the functions in \p Ctx.
  void build(const ASTContext &Ctx);

  /// True when \p Callee has a CFG we can follow.
  bool isFollowable(const FunctionDecl *Callee) const override {
    return Callee && Callee->isDefined();
  }

  const Node *node(const FunctionDecl *Fn) const {
    auto It = Nodes.find(Fn);
    return It == Nodes.end() ? nullptr : &It->second;
  }

  /// The CFG of \p Fn, or null for undefined functions.
  const CFG *cfg(const FunctionDecl *Fn) const {
    auto It = CFGs.find(Fn);
    return It == CFGs.end() ? nullptr : It->second.get();
  }

  /// Callgraph roots: functions with no callers, plus one arbitrary member
  /// of every otherwise-unreachable recursive chain.
  const std::vector<const FunctionDecl *> &roots() const { return Roots; }

  /// Every defined function, in parse order.
  const std::vector<const FunctionDecl *> &definedFunctions() const {
    return Defined;
  }

  unsigned numCFGBlocks() const;

private:
  void collectCallees(const FunctionDecl *Fn);
  void computeRoots();
  void markReachable(const FunctionDecl *Fn,
                     std::map<const FunctionDecl *, bool> &Reached) const;

  std::map<const FunctionDecl *, Node> Nodes;
  std::map<const FunctionDecl *, std::unique_ptr<CFG>> CFGs;
  std::vector<const FunctionDecl *> Defined;
  std::vector<const FunctionDecl *> Roots;
};

} // namespace mc

#endif // MC_CFG_CALLGRAPH_H
