//===- cfg/CFG.h - Control flow graphs --------------------------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow graph over statement *trees*: each basic block holds a list
/// of full statement trees that the engine walks in execution order
/// (Section 5). Terminators carry the branch condition and labelled
/// true/false (or case) edges so that path-specific transitions (Section 3.2)
/// and false-path pruning (Section 8) know which way an edge goes.
///
/// Following the paper's supergraph construction (Section 6.2), every
/// function CFG has a dedicated entry node and exit node, and blocks are
/// split after statements that contain calls to functions whose CFGs are
/// available, which makes those blocks callsite nodes and their successors
/// return-site nodes.
///
//===----------------------------------------------------------------------===//

#ifndef MC_CFG_CFG_H
#define MC_CFG_CFG_H

#include "cfront/ASTContext.h"

#include <memory>
#include <vector>

namespace mc {

class BasicBlock;

/// A labelled CFG edge.
struct CFGEdge {
  enum EdgeKind {
    Uncond, ///< Unconditional fallthrough or jump.
    True,   ///< Taken when the block's condition is true.
    False,  ///< Taken when the block's condition is false.
    Case,   ///< Switch case arm; CaseValue holds the label value.
    Default ///< Switch default arm.
  };

  BasicBlock *To = nullptr;
  EdgeKind Kind = Uncond;
  const Expr *CaseValue = nullptr;
};

/// A basic block: a straight-line sequence of statement trees plus labelled
/// successor edges.
class BasicBlock {
public:
  enum BlockKind {
    Normal,
    Entry,   ///< The function's entry node (sp in the paper).
    Exit,    ///< The function's exit node (ep in the paper).
    CallSite ///< Ends with a statement containing a followable call.
  };

  explicit BasicBlock(unsigned Id, BlockKind Kind = Normal)
      : Id(Id), Kind(Kind) {}

  unsigned id() const { return Id; }
  BlockKind blockKind() const { return Kind; }
  void setBlockKind(BlockKind K) { Kind = K; }

  const std::vector<const Stmt *> &stmts() const { return Stmts; }
  void appendStmt(const Stmt *S) { Stmts.push_back(S); }

  /// The controlling expression for True/False/Case edges (null otherwise).
  const Expr *condition() const { return Cond; }
  void setCondition(const Expr *E) { Cond = E; }

  const std::vector<CFGEdge> &succs() const { return Succs; }
  void addSucc(BasicBlock *To, CFGEdge::EdgeKind K = CFGEdge::Uncond,
               const Expr *CaseValue = nullptr) {
    Succs.push_back(CFGEdge{To, K, CaseValue});
  }
  void clearSuccs() { Succs.clear(); }

  bool isExit() const { return Kind == Exit; }

private:
  unsigned Id;
  BlockKind Kind;
  std::vector<const Stmt *> Stmts;
  const Expr *Cond = nullptr;
  std::vector<CFGEdge> Succs;
};

/// The CFG of one function.
class CFG {
public:
  explicit CFG(const FunctionDecl *Fn) : Fn(Fn) {}
  CFG(const CFG &) = delete;
  CFG &operator=(const CFG &) = delete;

  const FunctionDecl *function() const { return Fn; }
  BasicBlock *entry() const { return EntryBlock; }
  BasicBlock *exit() const { return ExitBlock; }
  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  unsigned numBlocks() const { return Blocks.size(); }

  BasicBlock *createBlock(BasicBlock::BlockKind Kind = BasicBlock::Normal) {
    Blocks.push_back(std::make_unique<BasicBlock>(Blocks.size(), Kind));
    return Blocks.back().get();
  }
  void setEntry(BasicBlock *B) { EntryBlock = B; }
  void setExit(BasicBlock *B) { ExitBlock = B; }

private:
  const FunctionDecl *Fn;
  BasicBlock *EntryBlock = nullptr;
  BasicBlock *ExitBlock = nullptr;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

/// Decides whether a call is followable (its CFG will be available); used to
/// split callsite blocks during construction.
class CallTargetPredicate {
public:
  virtual ~CallTargetPredicate() = default;
  virtual bool isFollowable(const FunctionDecl *Callee) const = 0;
};

/// Builds the CFG for \p Fn. \p FollowableCalls may be null (no blocks are
/// then split at callsites — pure intraprocedural use).
std::unique_ptr<CFG> buildCFG(const FunctionDecl *Fn,
                              const CallTargetPredicate *FollowableCalls);

} // namespace mc

#endif // MC_CFG_CFG_H
