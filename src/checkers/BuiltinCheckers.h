//===- checkers/BuiltinCheckers.h - The stock checker suite -----*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stock checkers shipped with the system — the paper's running
/// examples plus representatives of each checker family it describes:
///
///   free          — use-after-free / double-free (Figure 1)
///   lock          — lost/double lock, missing release (Figure 3)
///   null          — unchecked allocation and NULL dereference
///   intr          — interrupt disable/enable balance (global state)
///   user_pointer  — SECURITY-annotated user-pointer taint
///   path_kill     — panic/BUG annotator (checker composition)
///
/// Each metal source is available as text (the Figure 1 / Figure 3 benches
/// print them) and as a compiled checker.
///
//===----------------------------------------------------------------------===//

#ifndef MC_CHECKERS_BUILTINCHECKERS_H
#define MC_CHECKERS_BUILTINCHECKERS_H

#include "metal/MetalChecker.h"

#include <memory>
#include <string>
#include <vector>

namespace mc {

/// The metal source text of a named builtin checker ("" when unknown).
const char *builtinCheckerSource(const std::string &Name);

/// Names of all builtin metal checkers.
std::vector<std::string> builtinCheckerNames();

/// Compiles the named builtin checker; null (with diagnostics) on failure.
std::unique_ptr<MetalChecker> makeBuiltinChecker(const std::string &Name,
                                                 SourceManager &SM,
                                                 DiagnosticEngine &Diags);

/// Compiles arbitrary metal text into a checker.
std::unique_ptr<MetalChecker> compileMetalChecker(const std::string &Source,
                                                  const std::string &BufName,
                                                  SourceManager &SM,
                                                  DiagnosticEngine &Diags);

} // namespace mc

#endif // MC_CHECKERS_BUILTINCHECKERS_H
