//===- checkers/FaultInjector.cpp - Hostile checker for testing --------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checkers/FaultInjector.h"

#include "metal/Pattern.h" // stripCasts

#include <chrono>
#include <thread>

using namespace mc;

FaultInjectorChecker::FaultInjectorChecker(Mode M, std::string TriggerFn,
                                           unsigned SleepMs,
                                           unsigned GrowthPerHit)
    : M(M), TriggerFn(std::move(TriggerFn)), SleepMs(SleepMs),
      GrowthPerHit(GrowthPerHit) {
  internState("start"); // initial global state
  Grown = internState("grown");
  PatternDiscriminator D;
  D.Kind = PatternDiscriminator::Filtered;
  D.KindMask |= uint64_t(1) << Stmt::SK_Call;
  D.Callees = {"bad_call", this->TriggerFn};
  Triggers.addTrigger(D);
  Triggers.seal();
}

void FaultInjectorChecker::checkPoint(const Stmt *Point,
                                      AnalysisContext &ACtx) {
  const auto *CE = dyn_cast<CallExpr>(Point);
  if (!CE)
    return;
  std::string_view Callee = CE->calleeName();
  if (Callee == "bad_call") {
    // The well-behaved rule: deterministic reports the containment tests
    // compare against a fault-free baseline.
    ACtx.markTransition();
    ACtx.report(ReportBuilder().message("call of bad_call").group("bad_call"));
    return;
  }
  if (Callee != TriggerFn)
    return;
  ACtx.markTransition();
  // Custom checker metric: how often the sabotage actually triggered (the
  // observability tests read it back out of the run manifest).
  ACtx.countMetric("checker.fault_injector.injections");
  switch (M) {
  case Mode::None:
    break;
  case Mode::Fault:
    ACtx.raiseFault("injected checker fault");
    break;
  case Mode::StateGrowth: {
    if (CE->numArgs() < 1)
      break;
    const Expr *Tree = stripCasts(CE->arg(0));
    if (!Tree)
      break;
    // Every instance carries distinct Data, so no block-cache tuple ever
    // repeats and the state monotonically grows until the valve trips.
    for (unsigned I = 0; I != GrowthPerHit; ++I) {
      VarState &VS = ACtx.createInstance(Tree, Grown);
      VS.Data = symbolize(std::to_string(I));
    }
    break;
  }
  case Mode::SlowCallout:
    std::this_thread::sleep_for(std::chrono::milliseconds(SleepMs));
    break;
  }
}
