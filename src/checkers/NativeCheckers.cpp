//===- checkers/NativeCheckers.cpp - C++-API checkers ------------------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checkers/NativeCheckers.h"

#include "cfront/ASTPrinter.h"
#include "metal/Pattern.h" // stripCasts
#include "report/ReportManager.h"
#include "support/StringUtils.h"

using namespace mc;

namespace {

/// The first l-value-shaped argument of \p CE, stripped of casts.
const Expr *firstPointerArg(const CallExpr *CE) {
  for (const Expr *Arg : CE->args()) {
    const Expr *Stripped = stripCasts(Arg);
    if (Stripped && isLValueShape(Stripped))
      return Stripped;
  }
  return nullptr;
}

/// Filtered discriminator over statement kinds; \p Callees restricts calls
/// to the named functions (empty + AnyCallee admits every call).
PatternDiscriminator triggerFor(std::initializer_list<Stmt::StmtKind> Kinds,
                                std::vector<std::string> Callees,
                                bool AnyCallee = false) {
  PatternDiscriminator D;
  D.Kind = PatternDiscriminator::Filtered;
  for (Stmt::StmtKind K : Kinds)
    D.KindMask |= uint64_t(1) << K;
  D.AnyCallee = AnyCallee;
  D.Callees = std::move(Callees);
  return D;
}

} // namespace

//===----------------------------------------------------------------------===//
// NativeFreeChecker
//===----------------------------------------------------------------------===//

NativeFreeChecker::NativeFreeChecker() {
  internState("start"); // initial global state
  Freed = internState("freed");
  Triggers.addTrigger(triggerFor({Stmt::SK_Call}, {"kfree", "free"}));
  Triggers.addTrigger(triggerFor({Stmt::SK_Unary}, {}));
  Triggers.seal();
}

void NativeFreeChecker::checkPoint(const Stmt *Point, AnalysisContext &ACtx) {
  // `kfree(v)` / `free(v)`: first free attaches state; second is an error.
  if (const auto *CE = dyn_cast<CallExpr>(Point)) {
    std::string_view Callee = CE->calleeName();
    if ((Callee == "kfree" || Callee == "free") && CE->numArgs() == 1) {
      const Expr *Arg = stripCasts(CE->arg(0));
      if (!Arg)
        return;
      std::string Key = exprKey(Arg);
      if (VarState *VS = ACtx.state().findByKey(Key)) {
        if (VS->Value == Freed && !ACtx.justCreated(*VS)) {
          ACtx.report(ReportBuilder()
                          .message(formatString("double free of %s!",
                                                Key.c_str()))
                          .instance(VS));
          ACtx.transition(*VS, StateStop);
        }
        return;
      }
      ACtx.createInstance(Arg, Freed);
      return;
    }
    return;
  }
  // `*v`: dereference of a freed pointer.
  if (const auto *UO = dyn_cast<UnaryOperator>(Point)) {
    if (UO->opcode() != UnaryOperator::Deref)
      return;
    const Expr *Sub = stripCasts(UO->sub());
    if (!Sub)
      return;
    if (VarState *VS = ACtx.state().findByKey(exprKey(Sub))) {
      if (VS->Value == Freed && !ACtx.justCreated(*VS)) {
        ACtx.report(
            ReportBuilder()
                .message(formatString(
                    "using %s after free!",
                    std::string(symbolText(VS->TreeKey)).c_str()))
                .instance(VS));
        ACtx.transition(*VS, StateStop);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// FlowInsensitiveFreeChecker
//===----------------------------------------------------------------------===//

FlowInsensitiveFreeChecker::FlowInsensitiveFreeChecker(
    std::vector<std::string> FreeFnsIn)
    : FreeFns(std::move(FreeFnsIn)) {
  internState("start");
  Freed = internState("freed");
  // Any call can free or use a tracked pointer; dereferences are uses.
  Triggers.addTrigger(
      triggerFor({Stmt::SK_Call, Stmt::SK_Unary}, {}, /*AnyCallee=*/true));
  Triggers.seal();
}

void FlowInsensitiveFreeChecker::checkPoint(const Stmt *Point,
                                            AnalysisContext &ACtx) {
  if (const auto *CE = dyn_cast<CallExpr>(Point)) {
    std::string Callee(CE->calleeName());
    for (const std::string &Fn : FreeFns) {
      if (Callee != Fn)
        continue;
      const Expr *Arg = firstPointerArg(CE);
      if (!Arg)
        return;
      std::string Key = exprKey(Arg);
      if (VarState *VS = ACtx.state().findByKey(Key)) {
        if (VS->Value == Freed && !ACtx.justCreated(*VS)) {
          std::string Rule(symbolText(VS->Data));
          ACtx.report(ReportBuilder()
                          .message(formatString("double free of %s (via %s)",
                                                Key.c_str(), Callee.c_str()))
                          .instance(VS)
                          .group(Rule)
                          .rule(Rule));
          ACtx.countViolation(Rule);
          ACtx.transition(*VS, StateStop);
        }
        return;
      }
      VarState &VS = ACtx.createInstance(Arg, Freed);
      // remember the rule (freeing function) for ranking
      VS.Data = symbolize(Callee);
      return;
    }
    // Any other use of a "freed" pointer as an argument is a violation.
    for (const Expr *Arg : CE->args()) {
      const Expr *Stripped = stripCasts(Arg);
      if (!Stripped || !isLValueShape(Stripped))
        continue;
      if (VarState *VS = ACtx.state().findByKey(exprKey(Stripped))) {
        if (VS->Value == Freed && !ACtx.justCreated(*VS)) {
          std::string Rule(symbolText(VS->Data));
          ACtx.report(
              ReportBuilder()
                  .message(formatString(
                      "%s used after being freed by %s",
                      std::string(symbolText(VS->TreeKey)).c_str(),
                      Rule.c_str()))
                  .instance(VS)
                  .group(Rule)
                  .rule(Rule));
          ACtx.countViolation(Rule);
          ACtx.transition(*VS, StateStop);
        }
      }
    }
    return;
  }
  if (const auto *UO = dyn_cast<UnaryOperator>(Point)) {
    if (UO->opcode() != UnaryOperator::Deref)
      return;
    const Expr *Sub = stripCasts(UO->sub());
    if (!Sub)
      return;
    if (VarState *VS = ACtx.state().findByKey(exprKey(Sub))) {
      if (VS->Value == Freed && !ACtx.justCreated(*VS)) {
        std::string Rule(symbolText(VS->Data));
        ACtx.report(
            ReportBuilder()
                .message(formatString(
                    "%s dereferenced after being freed by %s",
                    std::string(symbolText(VS->TreeKey)).c_str(),
                    Rule.c_str()))
                .instance(VS)
                .group(Rule)
                .rule(Rule));
        ACtx.countViolation(Rule);
        ACtx.transition(*VS, StateStop);
      }
    }
  }
}

void FlowInsensitiveFreeChecker::checkEndOfPath(VarState *VS,
                                                AnalysisContext &ACtx) {
  // A pointer that was never touched again is a successful check of the
  // freeing function's rule.
  if (VS && VS->Value == Freed)
    ACtx.countExample(std::string(symbolText(VS->Data)));
}

//===----------------------------------------------------------------------===//
// IntraLockChecker
//===----------------------------------------------------------------------===//

IntraLockChecker::IntraLockChecker() {
  internState("start");
  Locked = internState("locked");
  Triggers.addTrigger(
      triggerFor({Stmt::SK_Call}, {"lock", "down", "unlock", "up"}));
  Triggers.seal();
}

void IntraLockChecker::checkPoint(const Stmt *Point, AnalysisContext &ACtx) {
  const auto *CE = dyn_cast<CallExpr>(Point);
  if (!CE)
    return;
  std::string_view Callee = CE->calleeName();
  bool IsLock = Callee == "lock" || Callee == "down";
  bool IsUnlock = Callee == "unlock" || Callee == "up";
  if (!IsLock && !IsUnlock)
    return;
  const Expr *Arg = firstPointerArg(CE);
  if (!Arg)
    return;
  std::string Fn(ACtx.currentFunction() ? ACtx.currentFunction()->name()
                                        : std::string_view());
  std::string Key = exprKey(Arg);
  VarState *VS = ACtx.state().findByKey(Key);
  if (IsLock) {
    if (!VS) {
      ACtx.createInstance(Arg, Locked);
      return;
    }
    if (!ACtx.justCreated(*VS)) {
      ACtx.report(ReportBuilder()
                      .message(formatString("double acquire of %s",
                                            Key.c_str()))
                      .instance(VS)
                      .group(Fn)
                      .rule(Fn));
      ACtx.countViolation(Fn);
      ACtx.transition(*VS, StateStop);
    }
    return;
  }
  // Unlock.
  if (VS && !ACtx.justCreated(*VS)) {
    ACtx.countExample(Fn); // a correctly balanced pair
    ACtx.transition(*VS, StateStop);
    return;
  }
  ACtx.report(ReportBuilder()
                  .message(formatString("releasing unheld %s", Key.c_str()))
                  .group(Fn)
                  .rule(Fn));
  ACtx.countViolation(Fn);
}

void IntraLockChecker::checkEndOfPath(VarState *VS, AnalysisContext &ACtx) {
  if (!VS || VS->Value != Locked)
    return;
  std::string Fn(ACtx.currentFunction() ? ACtx.currentFunction()->name()
                                        : std::string_view());
  ACtx.report(ReportBuilder()
                  .message(formatString(
                      "%s never released",
                      std::string(symbolText(VS->TreeKey)).c_str()))
                  .instance(VS)
                  .group(Fn)
                  .rule(Fn));
  ACtx.countViolation(Fn);
}

//===----------------------------------------------------------------------===//
// PairInferenceChecker
//===----------------------------------------------------------------------===//

PairInferenceChecker::PairInferenceChecker() {
  internState("start");
  Opened = internState("opened");
  // Callees that take pointer arguments everywhere and would drown the
  // statistics.
  IgnoredCallees = {"printf", "printk", "memset", "memcpy"};
  Triggers.addTrigger(triggerFor({Stmt::SK_Call}, {}, /*AnyCallee=*/true));
  Triggers.seal();
}

void PairInferenceChecker::checkPoint(const Stmt *Point,
                                      AnalysisContext &ACtx) {
  const auto *CE = dyn_cast<CallExpr>(Point);
  if (!CE)
    return;
  std::string Callee(CE->calleeName());
  if (Callee.empty() || IgnoredCallees.count(Callee))
    return;
  const Expr *Arg = firstPointerArg(CE);
  if (!Arg)
    return;
  std::string Key = exprKey(Arg);

  if (CurMode == Mode::Learn) {
    if (VarState *VS = ACtx.state().findByKey(Key)) {
      if (!ACtx.justCreated(*VS) && symbolText(VS->Data) != Callee) {
        std::lock_guard<std::mutex> Lock(LearnMu);
        ++PairAfter[std::string(symbolText(VS->Data))][Callee];
      }
      return;
    }
    VarState &VS = ACtx.createInstance(Arg, Opened);
    VS.Data = symbolize(Callee);
    {
      std::lock_guard<std::mutex> Lock(LearnMu);
      ++Opens[Callee];
    }
    return;
  }

  // Check mode: only inferred openers start tracking; the inferred closer
  // ends it; anything else is neutral.
  if (VarState *VS = ACtx.state().findByKey(Key)) {
    std::string Opener(symbolText(VS->Data));
    auto RuleIt = Rules.find(Opener);
    if (RuleIt != Rules.end() && RuleIt->second == Callee &&
        !ACtx.justCreated(*VS)) {
      ACtx.countExample(Opener + "->" + Callee);
      ACtx.transition(*VS, StateStop);
    }
    return;
  }
  if (Rules.count(Callee)) {
    VarState &VS = ACtx.createInstance(Arg, Opened);
    VS.Data = symbolize(Callee);
  }
}

void PairInferenceChecker::checkEndOfPath(VarState *VS,
                                          AnalysisContext &ACtx) {
  if (!VS || VS->Value != Opened)
    return;
  if (CurMode == Mode::Learn)
    return;
  std::string Opener(symbolText(VS->Data));
  auto RuleIt = Rules.find(Opener);
  if (RuleIt == Rules.end())
    return;
  std::string RuleKey = Opener + "->" + RuleIt->second;
  ACtx.report(ReportBuilder()
                  .message(formatString(
                      "missing %s after %s(%s)", RuleIt->second.c_str(),
                      Opener.c_str(),
                      std::string(symbolText(VS->TreeKey)).c_str()))
                  .instance(VS)
                  .group(RuleKey)
                  .rule(RuleKey));
  ACtx.countViolation(RuleKey);
}

const std::map<std::string, std::string> &
PairInferenceChecker::inferRules(double MinZ) {
  Rules.clear();
  for (const auto &[Opener, Closers] : PairAfter) {
    const std::string *Best = nullptr;
    unsigned BestCount = 0;
    for (const auto &[Closer, Count] : Closers) {
      if (Count > BestCount) {
        Best = &Closer;
        BestCount = Count;
      }
    }
    if (!Best)
      continue;
    unsigned Total = Opens.count(Opener) ? Opens.at(Opener) : BestCount;
    if (Total < BestCount)
      Total = BestCount;
    double Z = zStatistic(Total, BestCount);
    if (Z >= MinZ)
      Rules[Opener] = *Best;
  }
  return Rules;
}
