//===- checkers/FaultInjector.h - Hostile checker for testing ---*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately hostile checker driving the fault-containment test suite
/// and bench (not registered as a builtin). It behaves like a normal
/// reporting checker — flagging every call of `bad_call` — until it sees a
/// call of the configured trigger function, where it misbehaves in the
/// configured way: raising a checker fault, growing per-path state without
/// bound, or sleeping inside the callout to blow wall-clock deadlines.
///
//===----------------------------------------------------------------------===//

#ifndef MC_CHECKERS_FAULTINJECTOR_H
#define MC_CHECKERS_FAULTINJECTOR_H

#include "metal/Checker.h"
#include "metal/DispatchIndex.h"

#include <string>

namespace mc {

class FaultInjectorChecker : public Checker {
public:
  enum class Mode {
    None,        ///< Well-behaved: only the bad_call reporting rule.
    Fault,       ///< raiseFault() at the trigger (a checker bug).
    StateGrowth, ///< Push GrowthPerHit distinct instances at the trigger.
    SlowCallout, ///< sleep_for(SleepMs) at the trigger (a hung callout).
  };

  explicit FaultInjectorChecker(Mode M = Mode::None,
                                std::string TriggerFn = "inject_fault",
                                unsigned SleepMs = 100,
                                unsigned GrowthPerHit = 1u << 17);

  std::string_view name() const override { return "fault_injector"; }
  void checkPoint(const Stmt *Point, AnalysisContext &ACtx) override;
  const DispatchIndex *dispatchIndex() const override { return &Triggers; }

private:
  Mode M;
  std::string TriggerFn;
  unsigned SleepMs;
  unsigned GrowthPerHit;
  int Grown;
  DispatchIndex Triggers;
};

} // namespace mc

#endif // MC_CHECKERS_FAULTINJECTOR_H
