//===- checkers/BuiltinCheckers.cpp - The stock checker suite ----------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "checkers/BuiltinCheckers.h"

#include "support/Hash.h"

using namespace mc;

namespace {

/// Figure 1: flags when freed pointers are dereferenced or double-freed.
/// Extended past the figure with array-subscript dereferences (`v[i]` is a
/// dereference of v) and the `free()` spelling.
const char FreeChecker[] = R"metal(
sm free_checker;
state decl any_pointer v;
decl any_scalar idx;

start:
  { kfree(v) } ==> v.freed
| { free(v) } ==> v.freed
;

v.freed:
  { *v } ==> v.stop, { err("using %s after free!", mc_identifier(v)); }
| { v[idx] } ==> v.stop, { err("using %s after free!", mc_identifier(v)); }
| { kfree(v) } ==> v.stop, { err("double free of %s!", mc_identifier(v)); }
| { free(v) } ==> v.stop, { err("double free of %s!", mc_identifier(v)); }
;
)metal";

/// Figure 3: warns when locks are released without being acquired, double
/// acquired, or not released at all. trylock returns 1 on acquisition.
const char LockChecker[] = R"metal(
sm lock_checker;
state decl any_pointer l;

start:
  { trylock(l) } ==> { true = l.locked, false = l.stop }
| { lock(l) } ==> l.locked
| { unlock(l) } ==> l.stop, { err("releasing unacquired lock %s!", mc_identifier(l)); }
;

l.locked:
  { lock(l) } ==> l.stop, { err("double acquire of lock %s!", mc_identifier(l)); }
| { trylock(l) } ==> l.stop, { err("re-acquiring held lock %s!", mc_identifier(l)); }
| { unlock(l) } ==> l.stop
| $end_of_path$ ==> l.stop, { err("lock %s never released!", mc_identifier(l)); }
;
)metal";

/// Unchecked-allocation / NULL dereference checker.
const char NullChecker[] = R"metal(
sm null_checker;
state decl any_pointer v;
decl any_arguments args;

start:
  { v = kmalloc(args) } ==> v.unchecked
| { v = malloc(args) } ==> v.unchecked
;

v.unchecked:
  { *v } ==> v.stop, { err("dereferencing %s, which may be NULL (allocation unchecked)", mc_identifier(v)); }
| { v == 0 } ==> { true = v.null, false = v.stop }
| { v != 0 } ==> { true = v.stop, false = v.null }
| { !v } ==> { true = v.null, false = v.stop }
| { (v) } && ${ mc_is_branch_condition() } ==> { true = v.stop, false = v.null }
;

v.null:
  { *v } ==> v.stop, { err("dereference of NULL pointer %s", mc_identifier(v)); }
;
)metal";

/// Interrupt disable/enable balance: a purely global-state checker.
const char IntrChecker[] = R"metal(
sm intr_checker;

start:
  { cli() } ==> disabled
| { sti() } ==> start, { err("enabling interrupts that are not disabled"); }
;

disabled:
  { cli() } ==> disabled, { err("double disable of interrupts"); }
| { sti() } ==> start
| $end_of_path$ ==> disabled, { err("exiting with interrupts disabled!"); }
;
)metal";

/// User-pointer taint: dereferencing a user-supplied pointer without
/// copyin() is an exploitable hole, so errors carry the SECURITY class.
const char UserPointerChecker[] = R"metal(
sm user_pointer_checker;
state decl any_pointer v;
decl any_arguments args;

start:
  { v = get_user_ptr(args) } ==> v.tainted, { path_annotate("SECURITY"); }
;

v.tainted:
  { *v } ==> v.stop, { err("dereferencing user pointer %s without copyin", mc_identifier(v)); }
| { copyin(v, args) } ==> v.stop
| { copyin(v) } ==> v.stop
;
)metal";

/// Untrusted-integer range checker (the security-checker family of [1]):
/// an integer read from the user must be bounds-checked before indexing
/// memory or sizing a copy.
const char RangeChecker[] = R"metal(
sm range_checker;
state decl any_scalar n;
decl any_pointer base;
decl any_expr bound;
decl any_arguments args;

start:
  { n = get_user_int(args) } ==> n.unchecked, { path_annotate("SECURITY"); }
;

n.unchecked:
  { base[n] } ==> n.stop, { err("user-controlled index %s used without a bounds check", mc_identifier(n)); }
| { memcpy_user(base, bound, n) } ==> n.stop, { err("user-controlled length %s used without a bounds check", mc_identifier(n)); }
| { n < bound } ==> { true = n.stop, false = n.unchecked }
| { n <= bound } ==> { true = n.stop, false = n.unchecked }
| { n > bound } ==> { true = n.unchecked, false = n.stop }
| { n >= bound } ==> { true = n.unchecked, false = n.stop }
;
)metal";

/// The Section 3.2 extension example: recursive locks handled by storing
/// the lock depth in the instance's data value. "Whenever a lock operation
/// or an unlock operation occurs, the resulting transition could either
/// increment or decrement the lock depth... If this depth ever went below 0
/// or exceeded a small constant, the extension would report an incorrect
/// lock pairing."
const char RecursiveLockChecker[] = R"metal(
sm rlock_checker;
state decl any_pointer l;

start:
  { rlock(l) } ==> l.held, { data_set(1); }
| { runlock(l) } ==> l.stop, { err("releasing unheld recursive lock %s", mc_identifier(l)); }
;

l.held:
  { rlock(l) } && ${ mc_data_ge(l, 8) } ==> l.stop, { err("recursive lock %s depth exceeds 8", mc_identifier(l)); }
| { rlock(l) } ==> l.held, { data_inc(); }
| { runlock(l) } && ${ mc_data_ge(l, 2) } ==> l.held, { data_dec(); }
| { runlock(l) } ==> l.stop
| $end_of_path$ ==> l.stop, { err("recursive lock %s still held at exit", mc_identifier(l)); }
;
)metal";

/// The path-kill composition extension: flags calls to panic-like functions
/// so that subsequent analyses do not report errors on dominated paths.
const char PathKillChecker[] = R"metal(
sm path_kill;
decl any_arguments args;

start:
  { panic(args) } ==> start, { annotate("PATHKILL"); kill_path(); }
| { BUG(args) } ==> start, { annotate("PATHKILL"); kill_path(); }
| { assert_fail(args) } ==> start, { annotate("PATHKILL"); kill_path(); }
;
)metal";

struct NamedSource {
  const char *Name;
  const char *Source;
};

const NamedSource Builtins[] = {
    {"free", FreeChecker},
    {"lock", LockChecker},
    {"null", NullChecker},
    {"intr", IntrChecker},
    {"user_pointer", UserPointerChecker},
    {"range", RangeChecker},
    {"rlock", RecursiveLockChecker},
    {"path_kill", PathKillChecker},
};

} // namespace

const char *mc::builtinCheckerSource(const std::string &Name) {
  for (const NamedSource &NS : Builtins)
    if (Name == NS.Name)
      return NS.Source;
  return "";
}

std::vector<std::string> mc::builtinCheckerNames() {
  std::vector<std::string> Names;
  for (const NamedSource &NS : Builtins)
    Names.push_back(NS.Name);
  return Names;
}

std::unique_ptr<MetalChecker>
mc::compileMetalChecker(const std::string &Source, const std::string &BufName,
                        SourceManager &SM, DiagnosticEngine &Diags) {
  std::unique_ptr<CheckerSpec> Spec = parseMetal(Source, BufName, SM, Diags);
  if (!Spec)
    return nullptr;
  auto Checker = std::make_unique<MetalChecker>(std::move(Spec));
  // Summary-store keys must see a different checker when the metal source
  // changes, even though the name stays the same.
  Checker->setFingerprintSalt(fnv1a64(Source));
  return Checker;
}

std::unique_ptr<MetalChecker>
mc::makeBuiltinChecker(const std::string &Name, SourceManager &SM,
                       DiagnosticEngine &Diags) {
  const char *Source = builtinCheckerSource(Name);
  if (!*Source)
    return nullptr;
  return compileMetalChecker(Source, "<builtin:" + Name + ">", SM, Diags);
}
