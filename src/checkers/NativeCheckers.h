//===- checkers/NativeCheckers.h - C++-API checkers -------------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkers written directly against the Checker C++ API — the paper's
/// "general-purpose code" escape hatch taken all the way:
///
/// - NativeFreeChecker: the Figure 1 checker hand-written in C++ (the
///   quickstart example uses it to show the native API).
/// - FlowInsensitiveFreeChecker: the Section 9 baseline — a list of
///   "freeing" functions, some of which only free conditionally, checked
///   without path sensitivity; statistical ranking must rescue it.
/// - PairInferenceChecker: "bugs as deviant behaviour" — learns which
///   function pairs (a, b) must be paired from the code itself, then checks
///   the inferred rules, ranking by z-statistic.
///
//===----------------------------------------------------------------------===//

#ifndef MC_CHECKERS_NATIVECHECKERS_H
#define MC_CHECKERS_NATIVECHECKERS_H

#include "metal/Checker.h"
#include "metal/DispatchIndex.h"

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace mc {

/// The free checker written against the native API.
class NativeFreeChecker : public Checker {
public:
  NativeFreeChecker();

  std::string_view name() const override { return "native_free"; }
  void checkPoint(const Stmt *Point, AnalysisContext &ACtx) override;
  const DispatchIndex *dispatchIndex() const override { return &Triggers; }

private:
  int Freed;
  /// Trigger set for block skipping: kfree/free calls and unary operators.
  DispatchIndex Triggers;
};

/// Section 9's flow-insensitive free checker: every function in \p FreeFns
/// is assumed to free its first pointer argument unconditionally. Counts
/// examples (pointer never touched again) and violations per freeing
/// function so z-statistic ranking can demote unreliable rules.
class FlowInsensitiveFreeChecker : public Checker {
public:
  explicit FlowInsensitiveFreeChecker(std::vector<std::string> FreeFns);

  std::string_view name() const override { return "fi_free"; }
  void checkPoint(const Stmt *Point, AnalysisContext &ACtx) override;
  void checkEndOfPath(VarState *VS, AnalysisContext &ACtx) override;
  const DispatchIndex *dispatchIndex() const override { return &Triggers; }

private:
  std::vector<std::string> FreeFns;
  int Freed;
  /// Any call (argument uses are violations) plus unary operators.
  DispatchIndex Triggers;
};

/// Section 9's "Ranking code" experiment: a purely intraprocedural lock
/// checker. Wrapper functions that always acquire (or always release)
/// produce systematic mismatches; counting each function's balanced pairs
/// (examples) vs mismatches (violations) under the function's name as the
/// rule key lets z-ranking separate real bugs from wrapper noise.
class IntraLockChecker : public Checker {
public:
  IntraLockChecker();

  std::string_view name() const override { return "intra_lock"; }
  void checkPoint(const Stmt *Point, AnalysisContext &ACtx) override;
  void checkEndOfPath(VarState *VS, AnalysisContext &ACtx) override;
  const DispatchIndex *dispatchIndex() const override { return &Triggers; }

private:
  int Locked;
  /// Calls to the lock/unlock vocabulary only.
  DispatchIndex Triggers;
};

/// Deviant-behaviour pair inference. Run once in Learn mode over the whole
/// source base, call inferRules(), then run again in Check mode.
class PairInferenceChecker : public Checker {
public:
  enum class Mode { Learn, Check };

  PairInferenceChecker();

  std::string_view name() const override { return "pair_inference"; }
  void checkPoint(const Stmt *Point, AnalysisContext &ACtx) override;
  void checkEndOfPath(VarState *VS, AnalysisContext &ACtx) override;

  void setMode(Mode M) { CurMode = M; }
  Mode mode() const { return CurMode; }

  /// After learning: keeps pairs whose co-occurrence z-statistic is at
  /// least \p MinZ. Returns the inferred (opener -> closer) rules.
  const std::map<std::string, std::string> &
  inferRules(double MinZ = 1.0);

  /// Raw learned counts (opener -> closer -> count).
  const std::map<std::string, std::map<std::string, unsigned>> &
  pairCounts() const {
    return PairAfter;
  }
  const std::map<std::string, unsigned> &openCounts() const { return Opens; }

  const DispatchIndex *dispatchIndex() const override { return &Triggers; }

private:
  Mode CurMode = Mode::Learn;
  int Opened;
  /// Every named call is interesting in both modes.
  DispatchIndex Triggers;
  /// Learn-mode counting mutates these from checkPoint, which sharded runs
  /// call from several worker threads at once.
  std::mutex LearnMu;
  std::map<std::string, std::map<std::string, unsigned>> PairAfter;
  std::map<std::string, unsigned> Opens;
  std::map<std::string, std::string> Rules;
  std::set<std::string> IgnoredCallees;
};

} // namespace mc

#endif // MC_CHECKERS_NATIVECHECKERS_H
