//===- engine/RunManifest.h - The unified run-report schema -----*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The run manifest: one machine-readable record of an analysis run that
/// unifies what used to be three dialects — the --stats counter line, the
/// BENCH_JSON engine block, and the incomplete-analysis JSON trailer — into
/// a single schema (`mc.run-manifest.v1`). It carries the effective engine
/// options, the full metrics snapshot (dotted names), the incident stream,
/// and the report count. --stats-json writes it, benches embed it, and the
/// legacy text surfaces are thin formatters over the same snapshot
/// (formatStatsText is byte-identical to the historical --stats line).
///
//===----------------------------------------------------------------------===//

#ifndef MC_ENGINE_RUNMANIFEST_H
#define MC_ENGINE_RUNMANIFEST_H

#include "engine/Engine.h"
#include "report/ReportManager.h"
#include "support/Metrics.h"

#include <string>
#include <string_view>
#include <vector>

namespace mc {

/// The manifest schema identifier; bump on breaking changes.
inline constexpr const char *kRunManifestSchema = "mc.run-manifest.v1";
/// The reproduction's version (PR sequence): stamped into every manifest so
/// trajectory tooling can segment by tool revision.
inline constexpr const char *kToolVersion = "0.9.0";

/// One step of a report's witness path, with its source location already
/// decoded (manifests outlive the SourceManager that produced them).
struct ManifestWitnessStep {
  /// Step kind name ("transition", "branch", "call", "summary", "rebind").
  std::string Kind;
  std::string File;
  uint64_t Line = 0;
  uint64_t Depth = 0;
  /// Tracked-object key ("" for the global state / call steps).
  std::string Object;
  std::string From;
  std::string To;

  friend bool operator==(const ManifestWitnessStep &,
                         const ManifestWitnessStep &) = default;
};

/// The provenance trace behind one ranked report: the checker-relevant
/// events the engine journaled along the execution path that emitted it.
struct ManifestWitness {
  std::string Checker;
  std::string File;
  uint64_t Line = 0;
  std::string Message;
  /// Steps beyond the journal cap that were not recorded.
  uint64_t DroppedSteps = 0;
  std::vector<ManifestWitnessStep> Steps;

  friend bool operator==(const ManifestWitness &,
                         const ManifestWitness &) = default;
};

/// One ranked report, as the manifest records it: presentation coordinates
/// plus the stable fingerprint (16 lowercase hex chars) that the persistent
/// baseline store keys on, and the lifecycle class a baseline run assigned
/// ("" when no baseline was active). `xgcc-triage` joins manifests against
/// baseline stores through the fingerprint.
struct ManifestReport {
  std::string Checker;
  std::string File;
  uint64_t Line = 0;
  std::string Message;
  std::string Fingerprint;
  std::string Lifecycle;

  friend bool operator==(const ManifestReport &,
                         const ManifestReport &) = default;
};

/// The baseline-diff summary of a `--baseline` run. Additive: the key is
/// written only when a baseline was active, and old parsers skip it.
struct ManifestBaseline {
  bool Enabled = false;
  uint64_t RunOrdinal = 0;
  uint64_t NewCount = 0;
  uint64_t KnownCount = 0;
  uint64_t FixedCount = 0;
  uint64_t SuppressedCount = 0;

  friend bool operator==(const ManifestBaseline &,
                         const ManifestBaseline &) = default;
};

/// One analysis run, as a value. Comparable so the schema round-trip
/// (writeJson → parseRunManifest) can be tested for identity.
struct RunManifest {
  std::string Schema = kRunManifestSchema;
  std::string Tool = "xgcc";
  std::string Version = kToolVersion;
  /// Effective engine options (including the Reporting block).
  EngineOptions Options;
  /// Full metrics snapshot: well-known counters, per-checker attribution,
  /// and checker-registered custom counters, all by dotted name.
  MetricsSnapshot Metrics;
  /// Degradation/quarantine incidents in serial root order.
  std::vector<RootIncident> Incidents;
  /// Witness paths for ranked reports that carry one, in ranked order.
  /// Additive: empty when capture is off, and old parsers skip the key.
  std::vector<ManifestWitness> Witnesses;
  /// Every ranked report with its stable fingerprint, in ranked order.
  /// Additive (old parsers skip the key); always written.
  std::vector<ManifestReport> Reports;
  /// Baseline-diff summary; written only when a baseline was active.
  ManifestBaseline Baseline;
  uint64_t ReportCount = 0;
  bool ParseOk = true;

  /// Pretty-printed (2-space indent) JSON; one object, trailing newline.
  void writeJson(raw_ostream &OS) const;

  friend bool operator==(const RunManifest &, const RunManifest &) = default;
};

/// Parses writeJson output (a strict JSON subset: objects, arrays, strings,
/// unsigned integers, booleans) back into \p Out. Unknown keys are skipped,
/// so newer manifests parse under this reader. Returns false and sets
/// \p Err (when non-null) on malformed input.
bool parseRunManifest(std::string_view Text, RunManifest &Out,
                      std::string *Err = nullptr);

/// The historical --stats line, byte-identical, as a view over the metrics
/// snapshot (key order and spelling come from MC_ENGINE_METRICS).
void formatStatsText(const MetricsSnapshot &M, raw_ostream &OS);

/// The --profile report: top-N checkers by callout time (then transitions
/// tried, then name), from the per-checker attribution counters.
void formatProfileText(const MetricsSnapshot &M, unsigned TopN,
                       raw_ostream &OS);

} // namespace mc

#endif // MC_ENGINE_RUNMANIFEST_H
