//===- engine/Engine.cpp - The xgcc analysis engine --------------------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "cfront/ASTPrinter.h"
#include "metal/DispatchIndex.h"
#include "metal/Pattern.h" // stripCasts
#include "support/Deadline.h"
#include "support/Trace.h"

#include <algorithm>

using namespace mc;

//===----------------------------------------------------------------------===//
// Internal structures
//===----------------------------------------------------------------------===//

/// One program point within a block's flattened, execution-ordered list.
struct Engine::PointInfo {
  const Stmt *Point;
  const Stmt *TopStmt;
  bool InCondition;
};

/// Path-private analysis state: the extension's sm_instance plus the
/// supporting analyses' state. Copied at splits, dropped on backtrack.
struct Engine::PathState {
  SMInstance SMI;
  ValueTracker VT;
  std::vector<PathSpecificEffect> PendingEffects; ///< At a branch condition.
  std::vector<PathSpecificEffect> PendingForks;   ///< Elsewhere: fork.
  std::string PathAnnotation;
  /// Witness journal: checker-relevant events on this path, copied into
  /// reports at emission. Empty (and free to copy) unless WitnessOn.
  WitnessJournal Witness;
  /// Shape trail: the always-on running hash behind stable fingerprints.
  /// Two integers — O(1) to fork-copy — mixed at the same events the journal
  /// records, without the journal's capture gating or location payloads.
  ShapeTrail Trail;
  bool Killed = false;
};

namespace {
/// Exit-state dedup keys for one function activation. With state interning
/// on, an exit state's identity is (consed tuple-set id, annotation symbol)
/// packed into one integer; with it off, the legacy serialized string. Both
/// encode exactly the same equivalence, so the surviving exit-state list —
/// and therefore every report byte — is identical either way.
struct ExitKeySet {
  std::set<uint64_t> Consed;
  std::set<std::string> Legacy;
};
} // namespace

/// Traversal context for one function activation.
struct Engine::FrameCtx {
  const FunctionDecl *Fn = nullptr;
  const CFG *G = nullptr;
  FunctionSummaries *FS = nullptr;
  std::vector<BacktraceEntry> Backtrace;
  std::vector<PathState> *ExitStates = nullptr;
  ExitKeySet *ExitKeys = nullptr;
  std::set<const FunctionDecl *> *CallStack = nullptr;
  unsigned Depth = 0;
  uint64_t PathsThisFunction = 0;
  bool PathLimitReached = false;
};

/// What refine saved so restore can rebuild the caller's state (Table 2).
struct Engine::RestoreInfo {
  struct SavedInstance {
    VarState VS;
    bool PassedToCallee = false;
  };
  std::vector<SavedInstance> Saved;
  struct ArgPair {
    const Expr *Actual = nullptr;      ///< Stripped actual argument.
    const Expr *ActualInner = nullptr; ///< a when the actual is &a.
    bool AddrOf = false;
    const Expr *FormalRef = nullptr;   ///< DeclRef to the formal.
    const Expr *FormalDeref = nullptr; ///< *formal (for the &a row).
  };
  std::vector<ArgPair> Args;
  unsigned CallerFileID = 0;
};

namespace {

/// Severity order of path annotations; smaller is stronger.
int annotationRank(const std::string &A) {
  if (A == "SECURITY")
    return 0;
  if (A == "ERROR")
    return 1;
  if (A.empty())
    return 2;
  return 3; // MINOR and anything else
}

/// True when \p E references a declaration with function-local storage that
/// satisfies \p Pred.
bool referencesLocalDecl(const Expr *E,
                         const std::function<bool(const VarDecl *)> &Pred) {
  if (!E)
    return false;
  if (const auto *DRE = dyn_cast<DeclRefExpr>(E))
    if (const auto *VD = dyn_cast<VarDecl>(DRE->decl()))
      if (Pred(VD))
        return true;
  bool Found = false;
  forEachChild(E, [&](const Expr *Child) {
    if (!Found && referencesLocalDecl(Child, Pred))
      Found = true;
  });
  return Found;
}

/// True when \p E mentions any declaration in \p Scope.
bool referencesAnyOf(const Expr *E,
                     const std::unordered_set<const VarDecl *> &Scope) {
  return referencesLocalDecl(
      E, [&](const VarDecl *VD) { return Scope.count(VD) != 0; });
}

/// Collects every VarDecl declared by statements under \p S.
void collectLocalDecls(const Stmt *S,
                       std::unordered_set<const VarDecl *> &Out) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::SK_Decl:
    for (VarDecl *VD : cast<DeclStmt>(S)->decls())
      Out.insert(VD);
    return;
  case Stmt::SK_Compound:
    for (const Stmt *Sub : cast<CompoundStmt>(S)->body())
      collectLocalDecls(Sub, Out);
    return;
  case Stmt::SK_If:
    collectLocalDecls(cast<IfStmt>(S)->thenStmt(), Out);
    collectLocalDecls(cast<IfStmt>(S)->elseStmt(), Out);
    return;
  case Stmt::SK_While:
    collectLocalDecls(cast<WhileStmt>(S)->body(), Out);
    return;
  case Stmt::SK_Do:
    collectLocalDecls(cast<DoStmt>(S)->body(), Out);
    return;
  case Stmt::SK_For:
    collectLocalDecls(cast<ForStmt>(S)->init(), Out);
    collectLocalDecls(cast<ForStmt>(S)->body(), Out);
    return;
  case Stmt::SK_Switch:
    collectLocalDecls(cast<SwitchStmt>(S)->body(), Out);
    return;
  case Stmt::SK_Case:
    collectLocalDecls(cast<CaseStmt>(S)->sub(), Out);
    return;
  case Stmt::SK_Default:
    collectLocalDecls(cast<DefaultStmt>(S)->sub(), Out);
    return;
  case Stmt::SK_Label:
    collectLocalDecls(cast<LabelStmt>(S)->sub(), Out);
    return;
  default:
    return;
  }
}

/// The file-static decls mentioned by \p E.
void collectFileStatics(const Expr *E, std::vector<const VarDecl *> &Out) {
  if (!E)
    return;
  if (const auto *DRE = dyn_cast<DeclRefExpr>(E))
    if (const auto *VD = dyn_cast<VarDecl>(DRE->decl()))
      if (VD->storage() == VarDecl::FileStatic)
        Out.push_back(VD);
  forEachChild(E, [&](const Expr *Child) { collectFileStatics(Child, Out); });
}

/// True when \p E references a non-parameter local (these trees never enter
/// suffix/function summaries).
bool isLocalTree(const Expr *E) {
  return referencesLocalDecl(
      E, [](const VarDecl *VD) { return VD->storage() == VarDecl::Local; });
}

/// Serialized identity of an exit state, for dedup (the legacy string key,
/// used when state interning is off).
std::string exitStateKey(const SMInstance &SMI, const std::string &Annotation) {
  std::vector<StateTuple> Tuples = tuplesOf(SMI);
  std::sort(Tuples.begin(), Tuples.end());
  std::string Key = std::to_string(SMI.GState) + "|" + Annotation;
  for (const StateTuple &T : Tuples) {
    Key += ';';
    Key += symbolText(T.TreeKey);
    Key += ':';
    Key += std::to_string(T.Value);
    Key += ':';
    Key += symbolText(T.Data);
  }
  return Key;
}

} // namespace

//===----------------------------------------------------------------------===//
// Expression substitution (Table 2 retargeting)
//===----------------------------------------------------------------------===//

/// Rebuilds \p E with every subexpression equivalent to \p From replaced by
/// \p To. Returns \p E itself when nothing changed.
static const Expr *substituteExpr(ASTContext &Ctx, const Expr *E,
                                  const Expr *From, const Expr *To) {
  if (!E)
    return E;
  if (exprEquivalent(E, From))
    return To;
  switch (E->kind()) {
  case Stmt::SK_Unary: {
    const auto *UO = cast<UnaryOperator>(E);
    const Expr *Sub = substituteExpr(Ctx, UO->sub(), From, To);
    if (Sub == UO->sub())
      return E;
    return Ctx.create<UnaryOperator>(E->loc(), UO->opcode(), Sub, E->type());
  }
  case Stmt::SK_Binary: {
    const auto *BO = cast<BinaryOperator>(E);
    const Expr *L = substituteExpr(Ctx, BO->lhs(), From, To);
    const Expr *R = substituteExpr(Ctx, BO->rhs(), From, To);
    if (L == BO->lhs() && R == BO->rhs())
      return E;
    return Ctx.create<BinaryOperator>(E->loc(), BO->opcode(), L, R, E->type());
  }
  case Stmt::SK_ArraySubscript: {
    const auto *AS = cast<ArraySubscriptExpr>(E);
    const Expr *Base = substituteExpr(Ctx, AS->base(), From, To);
    const Expr *Index = substituteExpr(Ctx, AS->index(), From, To);
    if (Base == AS->base() && Index == AS->index())
      return E;
    return Ctx.create<ArraySubscriptExpr>(E->loc(), Base, Index, E->type());
  }
  case Stmt::SK_Member: {
    const auto *ME = cast<MemberExpr>(E);
    const Expr *Base = substituteExpr(Ctx, ME->base(), From, To);
    if (Base == ME->base())
      return E;
    return Ctx.create<MemberExpr>(E->loc(), Base, ME->member(), ME->isArrow(),
                                  E->type());
  }
  case Stmt::SK_Cast: {
    const auto *CE = cast<CastExpr>(E);
    const Expr *Sub = substituteExpr(Ctx, CE->sub(), From, To);
    if (Sub == CE->sub())
      return E;
    return Ctx.create<CastExpr>(E->loc(), E->type(), Sub);
  }
  default:
    return E;
  }
}

//===----------------------------------------------------------------------===//
// AnalysisContext implementation
//===----------------------------------------------------------------------===//

class Engine::ACtxImpl : public AnalysisContext {
public:
  ACtxImpl(Engine &E, PathState &PS, const FunctionDecl *Fn, unsigned Depth,
           const PointInfo *PI, const Expr *BranchCond = nullptr)
      : E(E), PS(PS), Fn(Fn), Depth(Depth), PI(PI), BranchCond(BranchCond) {}

  SMInstance &state() override { return PS.SMI; }

  VarState &createInstance(const Expr *Tree, int Value) override {
    MatchedFlag = true;
    if (E.CkC.States)
      bump(E.CkC.States);
    VarState VS;
    VS.Tree = stripCasts(Tree);
    VS.TreeKey = symbolize(exprKey(VS.Tree));
    VS.Value = Value;
    VS.CreatedAt = PI ? PI->TopStmt : nullptr;
    VS.OriginLoc = PI && PI->Point ? PI->Point->loc() : VS.Tree->loc();
    PS.SMI.ActiveVars.push_back(std::move(VS));
    return PS.SMI.ActiveVars.back();
  }

  void transition(VarState &VS, int Value) override {
    MatchedFlag = true;
    if (VS.SynonymGroup != 0) {
      unsigned Group = VS.SynonymGroup;
      for (VarState &Other : PS.SMI.ActiveVars)
        if (Other.SynonymGroup == Group)
          Other.Value = Value;
      return;
    }
    VS.Value = Value;
  }

  bool justCreated(const VarState &VS) const override {
    return PI && VS.CreatedAt && VS.CreatedAt == PI->TopStmt;
  }

  void pathSpecific(const PathSpecificEffect &Effect) override {
    MatchedFlag = true;
    if (PI && PI->InCondition)
      PS.PendingEffects.push_back(Effect);
    else
      PS.PendingForks.push_back(Effect);
  }

  void markTransition() override { MatchedFlag = true; }

  void report(const ReportBuilder &B) override {
    const VarState *Instance = B.Instance;
    ErrorReport R;
    R.CheckerName = std::string(E.CurChecker->name());
    R.Message = B.Message;
    SourceLoc Loc;
    if (PI && PI->Point)
      Loc = PI->Point->loc();
    else if (Instance && Instance->OriginLoc.isValid())
      Loc = Instance->OriginLoc;
    else if (Fn)
      Loc = Fn->loc();
    R.ErrorLoc = Loc;
    FullLoc Full = E.SM.decode(Loc);
    R.File = std::string(Full.Filename);
    R.Line = Full.Line;
    R.FunctionName = Fn ? std::string(Fn->name()) : "";
    if (Instance) {
      R.VariableName = std::string(symbolText(Instance->TreeKey));
      R.Conditionals = Instance->CondsCrossed;
      R.IndirectionDepth = Instance->IndirectionDepth;
      R.Interprocedural = Instance->Interprocedural;
      if (Instance->OriginLoc.isValid() &&
          Instance->OriginLoc.fileID() == Loc.fileID()) {
        unsigned L0 = E.SM.lineNumber(Instance->OriginLoc);
        R.DistanceLines = Full.Line > L0 ? Full.Line - L0 : L0 - Full.Line;
      }
    } else {
      R.Interprocedural = Depth > 0;
    }
    R.CallChainLength = Depth;
    R.Annotation = B.Annotation.empty() ? PS.PathAnnotation : B.Annotation;
    R.GroupKey = B.GroupKey;
    R.RuleKey = B.RuleKey.empty() ? B.GroupKey : B.RuleKey;
    // Witness-terminal identity, computed whether or not capture is on:
    // dedup must not depend on a reporting flag. The tracked object plus its
    // raw origin keeps textually identical reports about different objects
    // at one site (macro expansions) distinct.
    if (Instance && Instance->OriginLoc.isValid()) {
      R.WitnessKey = std::string(symbolText(Instance->TreeKey));
      R.WitnessKey += '@';
      R.WitnessKey += std::to_string(Instance->OriginLoc.fileID());
      R.WitnessKey += ':';
      R.WitnessKey += std::to_string(Instance->OriginLoc.offset());
    }
    // The stable fingerprint: report identity across runs and code motion.
    // Only shape goes in — names, message, rule, and the path's trail; never
    // ErrorLoc/Line/offsets, so edits above the site don't change it.
    {
      auto MixStr = [](std::string_view S, uint64_t H) {
        H = fnv1a64(S, H);
        return fnv1a64(uint64_t(S.size()), H);
      };
      uint64_t H = kFnvOffsetBasis;
      H = MixStr(R.CheckerName, H);
      H = MixStr(R.RuleKey, H);
      H = MixStr(R.VariableName, H);
      H = MixStr(R.Message, H);
      H = MixStr(R.FunctionName, H);
      H = fnv1a64(PS.Trail.Hash, H);
      H = fnv1a64(uint64_t(PS.Trail.Steps), H);
      R.Fingerprint = H;
    }
    if (E.WitnessOn) {
      R.Steps = PS.Witness.Steps;
      R.DroppedSteps = PS.Witness.Dropped;
      if (E.CkC.WitnessSteps)
        bump(E.CkC.WitnessSteps, R.Steps.size());
    }
    if (E.CkC.Reports)
      bump(E.CkC.Reports);
    E.Reports->add(std::move(R));
  }

  void countExample(const std::string &RuleKey) override {
    E.Reports->countExample(RuleKey);
  }
  void countViolation(const std::string &RuleKey) override {
    E.Reports->countViolation(RuleKey);
  }

  void annotatePath(const std::string &Tag) override {
    if (annotationRank(Tag) < annotationRank(PS.PathAnnotation))
      PS.PathAnnotation = Tag;
    else if (PS.PathAnnotation.empty())
      PS.PathAnnotation = Tag;
  }

  void annotate(const Stmt *Node, const std::string &Key,
                const std::string &Value) override {
    // Journal the previous value so an aborted root can restore it: an
    // aborted root must leave no trace in composition state, or later
    // checkers would see annotations from a path set that never "happened".
    auto &KV = E.Annotations[Node];
    auto It = KV.find(Key);
    AnnotUndo Undo;
    Undo.Node = Node;
    Undo.Key = Key;
    if (It != KV.end()) {
      Undo.HadOld = true;
      Undo.Old = It->second;
    }
    E.AnnotJournal.push_back(std::move(Undo));
    KV[Key] = Value;
  }
  const std::string *annotation(const Stmt *Node,
                                const std::string &Key) const override {
    auto NodeIt = E.Annotations.find(Node);
    if (NodeIt == E.Annotations.end())
      return nullptr;
    auto It = NodeIt->second.find(Key);
    return It == NodeIt->second.end() ? nullptr : &It->second;
  }

  void killPath() override { PS.Killed = true; }

  void raiseFault(const std::string &Reason) override {
    if (E.AbortKind == RootAbortKind::None) {
      E.AbortKind = RootAbortKind::CheckerFault;
      E.AbortReason = Reason;
      if (E.CkC.Faults)
        bump(E.CkC.Faults);
    }
    PS.Killed = true;
  }

  bool dispatchIndexEnabled() const override {
    return E.Opts.EnableDispatchIndex;
  }
  void noteDispatchLookup(uint64_t Total, uint64_t Tried) override {
    bump(E.Ctr.IndexPointLookups);
    bump(E.Ctr.IndexCandidatesTried, Tried);
    bump(E.Ctr.IndexTransitionsSkipped, Total > Tried ? Total - Tried : 0);
    if (E.CkC.Tried)
      bump(E.CkC.Tried, Tried);
  }

  void countMetric(std::string_view DottedName, uint64_t Delta) override {
    E.Metrics.add(DottedName, Delta);
  }

  void noteTransition(std::string_view Object, std::string_view From,
                      std::string_view To) override {
    // The shape trail is always on: fingerprints must not depend on whether
    // witness capture was requested. The journal below stays gated.
    PS.Trail.mix(WitnessStep::Kind::Transition, Object, From, To);
    if (!E.WitnessOn)
      return;
    WitnessStep S;
    S.K = WitnessStep::Kind::Transition;
    if (PI && PI->Point)
      S.Loc = PI->Point->loc();
    S.Depth = Depth;
    S.Object = std::string(Object);
    S.From = std::string(From);
    S.To = std::string(To);
    PS.Witness.append(std::move(S));
  }

  const FunctionDecl *currentFunction() const override { return Fn; }
  const Stmt *currentTopStmt() const override {
    return PI ? PI->TopStmt : nullptr;
  }
  bool atBranchCondition() const override { return PI && PI->InCondition; }
  const Expr *branchCondition() const override { return BranchCond; }
  const SourceManager &sourceManager() const override { return E.SM; }

  bool matched() const { return MatchedFlag; }

private:
  Engine &E;
  PathState &PS;
  const FunctionDecl *Fn;
  unsigned Depth;
  const PointInfo *PI;
  const Expr *BranchCond;
  bool MatchedFlag = false;
};

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

const char *mc::failPolicyName(FailPolicy P) {
  switch (P) {
  case FailPolicy::Never:
    return "never";
  case FailPolicy::Error:
    return "error";
  case FailPolicy::Degraded:
    return "degraded";
  }
  return "never";
}

bool mc::parseFailPolicy(std::string_view Spelling, FailPolicy &Out) {
  if (Spelling == "never")
    Out = FailPolicy::Never;
  else if (Spelling == "error")
    Out = FailPolicy::Error;
  else if (Spelling == "degraded")
    Out = FailPolicy::Degraded;
  else
    return false;
  return true;
}

EngineStats EngineStats::fromMetrics(const MetricsSnapshot &M) {
  EngineStats S;
#define MC_METRIC_READ(Field, DottedName, StatsKey, BenchKey)                  \
  S.Field = M.value(DottedName);
  MC_ENGINE_METRICS(MC_METRIC_READ)
#undef MC_METRIC_READ
  return S;
}

MetricsSnapshot EngineStats::toMetrics() const {
  MetricsSnapshot M;
#define MC_METRIC_WRITE(Field, DottedName, StatsKey, BenchKey)                 \
  M.add(DottedName, Field);
  MC_ENGINE_METRICS(MC_METRIC_WRITE)
#undef MC_METRIC_WRITE
  return M;
}

Engine::Engine(ASTContext &Ctx, const SourceManager &SM, const CallGraph &CG,
               ReportManager &Reports, EngineOptions Opts,
               TraceCollector *Trace)
    : Ctx(Ctx), SM(SM), CG(CG), Reports(&Reports), Opts(Opts), Trace(Trace) {
#define MC_METRIC_INIT(Field, DottedName, StatsKey, BenchKey)                  \
  Ctr.Field = Metrics.counter(DottedName);
  MC_ENGINE_METRICS(MC_METRIC_INIT)
#undef MC_METRIC_INIT
  ProfileTiming = this->Opts.Reporting.ProfileTopN > 0;
  WitnessOn = this->Opts.Reporting.CaptureWitness;
}

Engine::~Engine() = default;

EngineStats Engine::stats() const {
  return EngineStats::fromMetrics(Metrics.snapshot());
}

void Engine::refreshCheckerCells(const Checker &Ck) {
  if (CellsChecker == &Ck)
    return;
  CellsChecker = &Ck;
  std::string Base = "checker.";
  Base += Ck.name();
  CkC.Tried = Metrics.counter(Base + ".transitions.tried");
  CkC.Fired = Metrics.counter(Base + ".transitions.fired");
  CkC.States = Metrics.counter(Base + ".states.created");
  CkC.Faults = Metrics.counter(Base + ".faults");
  CkC.Reports = Metrics.counter(Base + ".reports");
  CkC.CalloutNs = Metrics.counter(Base + ".callout_ns");
  // Registered only when capture is on: a capture-off run's metrics snapshot
  // (and hence its manifest) must be byte-identical to one that predates the
  // witness layer.
  CkC.WitnessSteps =
      WitnessOn ? Metrics.counter(Base + ".witness.steps") : nullptr;
}

uint64_t Engine::laneOf(const FunctionDecl *Root) {
  // Lane 0 is the tool; root N in call-graph root order gets lane 1+N, which
  // is the same at any --jobs count (the root list is shared and immutable).
  if (RootLanes.empty()) {
    uint64_t Lane = 1;
    for (const FunctionDecl *R : CG.roots())
      RootLanes[R] = Lane++;
  }
  auto It = RootLanes.find(Root);
  return It != RootLanes.end() ? It->second : 0;
}

const BlockSummary *Engine::blockSummary(const FunctionDecl *Fn,
                                         const BasicBlock *B) const {
  auto It = Summaries.find(Fn);
  if (It == Summaries.end())
    return nullptr;
  return const_cast<FunctionSummaries &>(It->second).find(B);
}

const std::string *Engine::annotation(const Stmt *Node,
                                      const std::string &Key) const {
  auto NodeIt = Annotations.find(Node);
  if (NodeIt == Annotations.end())
    return nullptr;
  auto It = NodeIt->second.find(Key);
  return It == NodeIt->second.end() ? nullptr : &It->second;
}

//===----------------------------------------------------------------------===//
// Point lists
//===----------------------------------------------------------------------===//

static void appendExprPoints(const Expr *E, const Stmt *Top, bool InCond,
                             std::vector<Engine::PointInfo> &Out);

const std::vector<Engine::PointInfo> &Engine::pointsOf(const BasicBlock *B) {
  auto It = PointCache.find(B);
  if (It != PointCache.end())
    return It->second;
  std::vector<PointInfo> Points;
  for (const Stmt *S : B->stmts()) {
    bool IsCond = B->condition() == S;
    if (const auto *E = dyn_cast<Expr>(S)) {
      appendExprPoints(E, S, IsCond, Points);
      continue;
    }
    if (const auto *DS = dyn_cast<DeclStmt>(S)) {
      for (const VarDecl *VD : DS->decls())
        if (VD->init())
          appendExprPoints(VD->init(), S, false, Points);
      Points.push_back(PointInfo{S, S, false});
      continue;
    }
    if (const auto *RS = dyn_cast<ReturnStmt>(S)) {
      if (RS->value())
        appendExprPoints(RS->value(), S, false, Points);
      Points.push_back(PointInfo{S, S, false});
      continue;
    }
    Points.push_back(PointInfo{S, S, false});
  }
  return PointCache[B] = std::move(Points);
}

static void appendExprPoints(const Expr *E, const Stmt *Top, bool InCond,
                             std::vector<Engine::PointInfo> &Out) {
  forEachPointExecutionOrder(E, [&](const Expr *Point) {
    Out.push_back(Engine::PointInfo{Point, Top, InCond});
  });
}

bool Engine::blockMayFire(const BasicBlock *B) {
  if (MemoChecker != CurChecker) {
    // The memo answers "can CurChecker's transitions fire here"; a new
    // checker invalidates every cached answer.
    DispatchBlockMemo.clear();
    MemoChecker = CurChecker;
  }
  auto It = DispatchBlockMemo.find(B);
  if (It != DispatchBlockMemo.end())
    return It->second;
  bool May = true;
  if (const DispatchIndex *Idx = CurChecker->dispatchIndex()) {
    May = false;
    for (const PointInfo &PI : pointsOf(B))
      if (Idx->mayMatch(PI.Point)) {
        May = true;
        break;
      }
  }
  return DispatchBlockMemo[B] = May;
}

//===----------------------------------------------------------------------===//
// Transparent analyses (Section 8)
//===----------------------------------------------------------------------===//

void Engine::handleAssignment(PathState &PS, const Expr *LHS, const Expr *RHS,
                              const Stmt *TopStmt, bool Compound,
                              unsigned Depth) {
  const Expr *LHSStripped = stripCasts(LHS);
  if (!LHSStripped)
    return;
  // Rebind helper: LHS became an alias of a tracked object. The shape trail
  // always records it (fingerprints are capture-independent); the witness
  // journal only under capture.
  auto NoteRebind = [&](const std::string &To, const std::string &From,
                        int Value) {
    std::string State = CurChecker->stateName(Value);
    PS.Trail.mix(WitnessStep::Kind::Rebind, To, From, State);
    if (!WitnessOn)
      return;
    WitnessStep S;
    S.K = WitnessStep::Kind::Rebind;
    S.Loc = LHSStripped->loc();
    S.Depth = Depth;
    S.Object = To;
    S.From = From;
    S.To = State;
    PS.Witness.append(std::move(S));
  };

  // Killing variables and expressions: when a variable is defined, any
  // object whose tree uses it loses its state.
  if (Opts.EnableAutoKill && CurChecker->enableAutoKill()) {
    // Instances attached at this very statement (e.g. `v = kmalloc(...)`
    // patterns) survive their own defining assignment.
    if (const auto *DRE = dyn_cast<DeclRefExpr>(LHSStripped)) {
      const Decl *D = DRE->decl();
      for (VarState &VS : PS.SMI.ActiveVars) {
        if (VS.live() && VS.CreatedAt != TopStmt &&
            exprReferencesDecl(VS.Tree, D)) {
          VS.Value = StateStop;
          bump(Ctr.KillsApplied);
        }
      }
    } else {
      // Probe only: a key never tracked anywhere has no symbol and cannot
      // match, so the table is not grown for untracked assignments.
      if (uint32_t KeySym = lookupSymbol(exprKey(LHSStripped))) {
        for (VarState &VS : PS.SMI.ActiveVars) {
          if (VS.live() && VS.CreatedAt != TopStmt && VS.TreeKey == KeySym) {
            VS.Value = StateStop;
            bump(Ctr.KillsApplied);
          }
        }
      }
    }
    PS.SMI.sweepStopped();
  }

  // Synonyms: `q = p` mirrors p's state onto q.
  bool SynonymMade = false;
  if (!Compound && RHS && Opts.EnableSynonyms &&
      CurChecker->enableSynonyms() && isLValueShape(LHSStripped)) {
    const Expr *Src = stripCasts(RHS);
    if (Src && isLValueShape(Src)) {
      if (VarState *SrcVS = PS.SMI.findByKey(exprKey(Src))) {
        if (SrcVS->SynonymGroup == 0)
          SrcVS->SynonymGroup = ++SynonymGroupCounter;
        VarState Clone = *SrcVS;
        Clone.Tree = LHSStripped;
        Clone.TreeKey = symbolize(exprKey(LHSStripped));
        Clone.CreatedAt = TopStmt;
        Clone.IndirectionDepth = SrcVS->IndirectionDepth + 1;
        NoteRebind(std::string(symbolText(Clone.TreeKey)),
                   std::string(symbolText(SrcVS->TreeKey)), Clone.Value);
        PS.SMI.ActiveVars.push_back(std::move(Clone));
        bump(Ctr.SynonymsCreated);
        SynonymMade = true;
      }
    }
  }

  // False-path pruning's value tracking.
  if (Opts.EnableFalsePathPruning) {
    if (Compound) {
      PS.VT.havoc(LHSStripped);
    } else {
      PS.VT.assign(LHSStripped, RHS);
      // The tracker noticed a clean variable-to-variable rebind. When the
      // synonym machinery is off (ablation or a checker opting out) this is
      // the only record that the alias exists; journal it if the source is a
      // tracked object, so the witness still explains how state reached the
      // reported name.
      if (!SynonymMade) {
        ValueTracker::RebindNote Note = PS.VT.lastRebind();
        if (Note.Valid)
          if (const VarState *SrcVS = PS.SMI.findByKey(exprKey(Note.From)))
            NoteRebind(exprKey(LHSStripped),
                       std::string(symbolText(SrcVS->TreeKey)), SrcVS->Value);
      }
    }
  }
}

void Engine::handlePoint(FrameCtx &Frame, const BasicBlock *B, PathState &PS,
                         const PointInfo &PI, bool &Matched) {
  bump(Ctr.PointsVisited);
  // The no-transition-at-the-creating-statement rule (Section 3.2) only
  // covers the creating occurrence: once the analysis moves to a different
  // statement the mark is cleared, so a loop revisiting the statement can
  // trigger transitions normally.
  for (VarState &VS : PS.SMI.ActiveVars)
    if (VS.CreatedAt && VS.CreatedAt != PI.TopStmt)
      VS.CreatedAt = nullptr;
  // Per-block dispatch memo: when no point of this block can fire any of the
  // checker's transitions, skip the checker entirely. Everything the engine
  // does around the checker (auto-kill, synonyms, FPP, PATHKILL, call
  // following) still runs — Matched=false is exactly what the naive loop
  // would have produced.
  if (Opts.EnableDispatchIndex && !blockMayFire(B)) {
    Matched = false;
  } else {
    ACtxImpl ACtx(*this, PS, Frame.Fn, Frame.Depth, &PI, B->condition());
    {
      // Callout wall-clock attribution only under --profile: the timer is a
      // no-op (no clock reads) when profiling is off.
      ScopedTimerNs CalloutTimer(ProfileTiming ? CkC.CalloutNs : nullptr);
      CurChecker->checkPoint(PI.Point, ACtx);
    }
    Matched = ACtx.matched();
    if (Matched && CkC.Fired)
      bump(CkC.Fired);
    PS.SMI.sweepStopped();
    // Runaway-state valve: a checker growing per-path state without bound
    // (every instance distinct, so the block cache can never converge) is a
    // checker bug; abort the root rather than exhausting memory.
    if (Opts.MaxActiveStates &&
        PS.SMI.ActiveVars.size() > Opts.MaxActiveStates &&
        AbortKind == RootAbortKind::None) {
      AbortKind = RootAbortKind::StateLimit;
      AbortReason = "active-state limit of " +
                    std::to_string(Opts.MaxActiveStates) + " exceeded";
      bump(Ctr.StateLimitHits);
      PS.Killed = true;
    }
  }
  // Composition: a point flagged PATHKILL by an earlier checker (the panic
  // annotator) stops the traversal of the current path.
  if (const std::string *Kill = annotation(PI.Point, "PATHKILL")) {
    (void)Kill;
    PS.Killed = true;
  }

  if (const auto *BO = dyn_cast<BinaryOperator>(PI.Point)) {
    if (BO->isAssignment())
      handleAssignment(PS, BO->lhs(), BO->rhs(), PI.TopStmt,
                       BO->isCompoundAssignment(), Frame.Depth);
  } else if (const auto *UO = dyn_cast<UnaryOperator>(PI.Point)) {
    if (UO->isIncrementDecrement())
      handleAssignment(PS, UO->sub(), nullptr, PI.TopStmt, /*Compound=*/true,
                       Frame.Depth);
  } else if (const auto *DS = dyn_cast<DeclStmt>(PI.Point)) {
    for (const VarDecl *VD : DS->decls()) {
      if (!VD->init())
        continue;
      auto RefIt = DeclRefCache.find(VD);
      const Expr *Ref;
      if (RefIt != DeclRefCache.end()) {
        Ref = RefIt->second;
      } else {
        Ref = Ctx.create<DeclRefExpr>(VD->loc(), VD, VD->type());
        DeclRefCache[VD] = Ref;
      }
      handleAssignment(PS, Ref, VD->init(), PI.TopStmt, false, Frame.Depth);
    }
  }
}

//===----------------------------------------------------------------------===//
// Traversal
//===----------------------------------------------------------------------===//

void Engine::traverseBlock(FrameCtx &Frame, const BasicBlock *B,
                           PathState PS) {
  if (Frame.PathLimitReached || rootAborted())
    return;
  if (Frame.Backtrace.size() >= Opts.MaxPathLength) {
    // Without caching, loops would unroll forever; cut the path here.
    bump(Ctr.PathLimitHits);
    bump(Ctr.PathsExplored);
    return;
  }
  bump(Ctr.BlocksVisited);
  if (Opts.EnableDispatchIndex && !blockMayFire(B))
    bump(Ctr.IndexBlocksSkipped);
  BlockSummary &Sum = Frame.FS->of(B);
  // Everything this frame allocates from the root arena (entry-tuple
  // snapshots) is released when the frame unwinds; the DFS is strictly
  // nested, so mark/rewind is safe and bounds arena growth by the live path.
  BumpScope ArenaScope(RootArena);
  TupleSpan Entry = tuplesOf(PS.SMI, RootArena);

  if (Opts.EnableBlockCache) {
    bool AllCached = false;
    uint32_t EntrySetId = 0;
    if (Opts.EnableStateInterning) {
      // Consed fast path: a set id seen before is already known to be fully
      // contained in Reached (Reached only grows within a checker run, so
      // positive answers stay true).
      EntrySetId = SetIntern.id(Entry);
      AllCached = Sum.HitSets.count(EntrySetId) != 0;
    }
    if (!AllCached) {
      AllCached = true;
      for (const StateTuple &T : Entry)
        if (!Sum.Reached.count(T)) {
          AllCached = false;
          break;
        }
      if (AllCached && Opts.EnableStateInterning)
        Sum.HitSets.insert(EntrySetId);
    }
    if (AllCached) {
      // The whole state has been explored from this block: abort the path
      // (cache_misses, Section 5.2), relaxing suffix summaries on the way.
      bump(Ctr.BlockCacheHits);
      Frame.Backtrace.push_back(BacktraceEntry{B, Entry});
      relaxSuffixSummaries(Frame.Backtrace, *Frame.FS, [&](uint32_t Key) {
        auto It = Frame.FS->LocalKeys.find(Key);
        return It == Frame.FS->LocalKeys.end() || !It->second;
      });
      Frame.Backtrace.pop_back();
      bump(Ctr.PathsExplored);
      if (++Frame.PathsThisFunction > Opts.MaxPathsPerFunction) {
        Frame.PathLimitReached = true;
        bump(Ctr.PathLimitHits);
      }
      return;
    }
    // Partial hit: drop instances whose tuple is already cached; only the
    // remaining (new) tuples are carried through the block.
    std::erase_if(PS.SMI.ActiveVars, [&](const VarState &VS) {
      if (!VS.live() || VS.Inactive)
        return false;
      return Sum.Reached.count(
                 StateTuple{PS.SMI.GState, VS.TreeKey, VS.Value, VS.Data}) != 0;
    });
    Entry = tuplesOf(PS.SMI, RootArena);
  }

  for (const StateTuple &T : Entry)
    Sum.Reached.insert(T);
  // Record tree locality for the summary filters.
  for (const VarState &VS : PS.SMI.ActiveVars)
    if (VS.live() && !Frame.FS->LocalKeys.count(VS.TreeKey))
      Frame.FS->LocalKeys[VS.TreeKey] = isLocalTree(VS.Tree);

  Frame.Backtrace.push_back(BacktraceEntry{B, Entry});
  processPoints(Frame, B, Entry, 0, std::move(PS));
  Frame.Backtrace.pop_back();
}

void Engine::processPoints(FrameCtx &Frame, const BasicBlock *B,
                           TupleSpan EntrySnapshot, size_t Idx, PathState PS) {
  const std::vector<PointInfo> &Points = pointsOf(B);
  for (size_t I = Idx; I < Points.size(); ++I) {
    if (AbortKind != RootAbortKind::None)
      return; // Aborting the root: skip even the quiet path-end bookkeeping.
    if (PS.Killed)
      break;
    const PointInfo &PI = Points[I];
    bool Matched = false;
    handlePoint(Frame, B, PS, PI, Matched);

    // A path-specific transition away from a branch condition forks the
    // analysis: both outcomes are possible.
    if (!PS.PendingForks.empty()) {
      PathSpecificEffect Eff = PS.PendingForks.front();
      PS.PendingForks.erase(PS.PendingForks.begin());
      for (bool Branch : {true, false}) {
        PathState Copy = PS;
        int Value = Branch ? Eff.TrueValue : Eff.FalseValue;
        if (VarState *VS = Copy.SMI.findByKey(Eff.TreeKey)) {
          if (VS->Value != Value) {
            Copy.Trail.mix(WitnessStep::Kind::Transition,
                           symbolText(Eff.TreeKey),
                           CurChecker->stateName(VS->Value),
                           CurChecker->stateName(Value));
            if (WitnessOn)
              Copy.Witness.append(WitnessStep{
                  WitnessStep::Kind::Transition, PI.Point->loc(), Frame.Depth,
                  std::string(symbolText(Eff.TreeKey)),
                  CurChecker->stateName(VS->Value),
                  CurChecker->stateName(Value)});
          }
          VS->Value = Value;
          Copy.SMI.sweepStopped();
        } else if (Value != StateStop && Eff.Tree) {
          ACtxImpl ACtx(*this, Copy, Frame.Fn, Frame.Depth, &PI);
          ACtx.createInstance(Eff.Tree, Value);
          Copy.Trail.mix(WitnessStep::Kind::Transition, symbolText(Eff.TreeKey),
                         "", CurChecker->stateName(Value));
          if (WitnessOn)
            Copy.Witness.append(WitnessStep{
                WitnessStep::Kind::Transition, PI.Point->loc(), Frame.Depth,
                std::string(symbolText(Eff.TreeKey)), "",
                CurChecker->stateName(Value)});
        }
        processPoints(Frame, B, EntrySnapshot, I + 1, std::move(Copy));
      }
      return;
    }

    // Interprocedural: follow calls the checker did not match.
    if (Opts.Interprocedural && !Matched) {
      if (const auto *CE = dyn_cast<CallExpr>(PI.Point)) {
        if (const auto *DRE = dyn_cast<DeclRefExpr>(CE->callee())) {
          if (const auto *Callee = dyn_cast<FunctionDecl>(DRE->decl())) {
            if (CG.cfg(Callee) && Frame.Depth + 1 < Opts.MaxCallDepth) {
              followCall(Frame, B, EntrySnapshot, I + 1, std::move(PS), CE,
                         Callee);
              return;
            }
          }
        }
      }
    }
  }
  if (AbortKind != RootAbortKind::None)
    return;
  if (PS.Killed) {
    // Path-kill composition: stop traversing this path quietly.
    bump(Ctr.PathsExplored);
    if (++Frame.PathsThisFunction > Opts.MaxPathsPerFunction) {
      Frame.PathLimitReached = true;
      bump(Ctr.PathLimitHits);
    }
    return;
  }
  finishBlock(Frame, B, EntrySnapshot, std::move(PS));
}

void Engine::finishBlock(FrameCtx &Frame, const BasicBlock *B,
                         TupleSpan EntrySnapshot, PathState PS) {
  BlockSummary &Sum = Frame.FS->of(B);
  int GEntry = EntrySnapshot.empty() ? PS.SMI.GState
                                     : EntrySnapshot.front().GState;
  int GExit = PS.SMI.GState;

  // Compute this traversal's transition and add edges (Section 5.2).
  std::vector<SummaryEdge> Inserted;
  auto Insert = [&](SummaryEdge E) {
    if (!Sum.Edges.count(E)) {
      Sum.addEdge(E);
      Inserted.push_back(E);
    }
  };
  // The global-only edge (relax uses it to match add-edge start states).
  Insert(SummaryEdge{StateTuple{GEntry, {}, StateStop, {}},
                     StateTuple{GExit, {}, StateStop, {}}, nullptr, {}});

  // Hashed: iterated below, but every use (set inserts, LocalKeys probes)
  // is order-insensitive, so iteration order cannot reach report bytes.
  std::unordered_map<uint32_t, const VarState *> ExitByKey;
  for (const VarState &VS : PS.SMI.ActiveVars)
    if (VS.live() && !VS.Inactive)
      ExitByKey[VS.TreeKey] = &VS;

  std::unordered_set<uint32_t> EntryKeys;
  for (const StateTuple &T : EntrySnapshot) {
    if (T.isPlaceholder())
      continue;
    EntryKeys.insert(T.TreeKey);
    auto It = ExitByKey.find(T.TreeKey);
    if (It != ExitByKey.end()) {
      const VarState *VS = It->second;
      Insert(SummaryEdge{T,
                         StateTuple{GExit, VS->TreeKey, VS->Value, VS->Data},
                         VS->Tree, {}});
    } else {
      // The object was killed/stopped within the block.
      Insert(SummaryEdge{T, StateTuple{GExit, T.TreeKey, StateStop, {}},
                         nullptr, {}});
    }
  }
  for (const auto &[Key, VS] : ExitByKey) {
    if (EntryKeys.count(Key))
      continue;
    if (!Frame.FS->LocalKeys.count(Key))
      Frame.FS->LocalKeys[Key] = isLocalTree(VS->Tree);
    Insert(SummaryEdge{StateTuple{GEntry, Key, StateUnknown, {}},
                       StateTuple{GExit, Key, VS->Value, VS->Data}, VS->Tree,
                       VS->FactKey});
  }

  auto KeepTree = [&](uint32_t Key) {
    auto It = Frame.FS->LocalKeys.find(Key);
    return It == Frame.FS->LocalKeys.end() || !It->second;
  };
  auto NotePathEnd = [&] {
    bump(Ctr.PathsExplored);
    if (++Frame.PathsThisFunction > Opts.MaxPathsPerFunction) {
      Frame.PathLimitReached = true;
      bump(Ctr.PathLimitHits);
    }
  };

  if (B == Frame.G->exit()) {
    // ep's suffix summary equals its block summary (minus stop-enders).
    for (const SummaryEdge &E : Sum.Edges) {
      if (E.To.Value == StateStop && !E.To.isPlaceholder())
        continue;
      if (!E.To.isPlaceholder() && !KeepTree(E.To.TreeKey))
        continue;
      Sum.addSuffixEdge(E);
    }
    relaxSuffixSummaries(Frame.Backtrace, *Frame.FS, KeepTree);
    // Exit-state dedup: consed (set id, annotation symbol) when interning
    // is on, the legacy serialized string otherwise — same equivalence, so
    // the surviving exit-state list is identical either way.
    bool Fresh;
    if (Opts.EnableStateInterning) {
      uint64_t Key = uint64_t(SetIntern.id(tuplesOf(PS.SMI, RootArena))) << 32 |
                     symbolize(PS.PathAnnotation);
      Fresh = Frame.ExitKeys->Consed.insert(Key).second;
    } else {
      Fresh = Frame.ExitKeys->Legacy
                  .insert(exitStateKey(PS.SMI, PS.PathAnnotation))
                  .second;
    }
    if (Fresh)
      Frame.ExitStates->push_back(PS);
    NotePathEnd();
    return;
  }

  const std::vector<CFGEdge> &Succs = B->succs();
  if (Succs.empty()) {
    relaxSuffixSummaries(Frame.Backtrace, *Frame.FS, KeepTree);
    NotePathEnd();
    return;
  }

  // Decide edge feasibility (false path pruning, Section 8).
  std::vector<std::pair<const CFGEdge *, PathState>> Feasible;
  bool UseFPP = Opts.EnableFalsePathPruning && B->condition();
  Tri CondValue = Tri::Unknown;
  if (UseFPP)
    CondValue = PS.VT.evaluate(B->condition());

  for (const CFGEdge &Edge : Succs) {
    if (UseFPP) {
      if (Edge.Kind == CFGEdge::True && CondValue == Tri::False) {
        bump(Ctr.PathsPruned);
        continue;
      }
      if (Edge.Kind == CFGEdge::False && CondValue == Tri::True) {
        bump(Ctr.PathsPruned);
        continue;
      }
      if (Edge.Kind == CFGEdge::Case && Edge.CaseValue &&
          PS.VT.compareEq(B->condition(), Edge.CaseValue) == Tri::False) {
        bump(Ctr.PathsPruned);
        continue;
      }
    }
    PathState Copy = PS;
    if (UseFPP) {
      bool Ok = true;
      if (Edge.Kind == CFGEdge::True)
        Ok = Copy.VT.assume(B->condition(), true);
      else if (Edge.Kind == CFGEdge::False)
        Ok = Copy.VT.assume(B->condition(), false);
      else if (Edge.Kind == CFGEdge::Case && Edge.CaseValue) {
        Ok = Copy.VT.assumeEq(B->condition(), Edge.CaseValue, true);
      } else if (Edge.Kind == CFGEdge::Default) {
        // The default arm excludes every case label.
        for (const CFGEdge &Other : Succs)
          if (Ok && Other.Kind == CFGEdge::Case && Other.CaseValue)
            Ok = Copy.VT.assumeEq(B->condition(), Other.CaseValue, false);
      }
      if (!Ok) {
        bump(Ctr.PathsPruned);
        continue;
      }
    }
    // Apply path-specific transitions for the taken branch (Section 3.2).
    if (Edge.Kind == CFGEdge::True || Edge.Kind == CFGEdge::False) {
      bool Taken = Edge.Kind == CFGEdge::True;
      // Record the branch decision itself — trail always, journal under
      // capture — but only while the checker has live state: mirrors the
      // "conditionals crossed" ranking input, and keeps journals from
      // filling with pre-tracking control flow. A condition whose
      // path-specific effect *creates* the first state still gets the
      // effect's transition step below.
      if (B->condition()) {
        bool Live = PS.SMI.GState != CurChecker->initialGlobalState();
        for (const VarState &VS : PS.SMI.ActiveVars)
          if (!Live && VS.live() && !VS.Inactive)
            Live = true;
        if (Live) {
          const std::string &Cond = condText(B->condition());
          Copy.Trail.mix(WitnessStep::Kind::Branch, Cond,
                         Taken ? "true" : "false", "");
          if (WitnessOn)
            Copy.Witness.append(WitnessStep{
                WitnessStep::Kind::Branch, B->condition()->loc(), Frame.Depth,
                Cond, Taken ? "true" : "false", ""});
        }
      }
      for (const PathSpecificEffect &Eff : Copy.PendingEffects) {
        int Value = Taken ? Eff.TrueValue : Eff.FalseValue;
        if (VarState *VS = Copy.SMI.findByKey(Eff.TreeKey)) {
          if (VS->Value != Value) {
            Copy.Trail.mix(WitnessStep::Kind::Transition,
                           symbolText(Eff.TreeKey),
                           CurChecker->stateName(VS->Value),
                           CurChecker->stateName(Value));
            if (WitnessOn)
              Copy.Witness.append(WitnessStep{
                  WitnessStep::Kind::Transition,
                  B->condition() ? B->condition()->loc() : SourceLoc(),
                  Frame.Depth, std::string(symbolText(Eff.TreeKey)),
                  CurChecker->stateName(VS->Value),
                  CurChecker->stateName(Value)});
          }
          VS->Value = Value;
        } else if (Value != StateStop && Eff.Tree) {
          VarState NewVS;
          NewVS.Tree = Eff.Tree;
          NewVS.TreeKey = Eff.TreeKey;
          NewVS.Value = Value;
          NewVS.OriginLoc = Eff.Tree->loc();
          Copy.Trail.mix(WitnessStep::Kind::Transition, symbolText(Eff.TreeKey),
                         "", CurChecker->stateName(Value));
          if (WitnessOn)
            Copy.Witness.append(WitnessStep{
                WitnessStep::Kind::Transition,
                B->condition() ? B->condition()->loc() : SourceLoc(),
                Frame.Depth, std::string(symbolText(Eff.TreeKey)), "",
                CurChecker->stateName(Value)});
          Copy.SMI.ActiveVars.push_back(std::move(NewVS));
        }
      }
      Copy.SMI.sweepStopped();
    }
    Copy.PendingEffects.clear();
    Feasible.emplace_back(&Edge, std::move(Copy));
  }

  if (Feasible.empty()) {
    // Every successor is infeasible: the paper removes block summary entries
    // inserted while analysing the pruned path (Section 8, step 6).
    for (const SummaryEdge &E : Inserted)
      Sum.Edges.erase(E);
    NotePathEnd();
    return;
  }

  // Splitting at a conditional counts toward every live instance's
  // "conditionals crossed" ranking input.
  if (Feasible.size() > 1) {
    for (auto &[Edge, State] : Feasible)
      for (VarState &VS : State.SMI.ActiveVars)
        if (VS.live())
          ++VS.CondsCrossed;
  }

  for (auto &[Edge, State] : Feasible)
    traverseBlock(Frame, Edge->To, std::move(State));
}

//===----------------------------------------------------------------------===//
// Interprocedural analysis (Section 6)
//===----------------------------------------------------------------------===//

const std::string &Engine::condText(const Expr *E) {
  auto It = CondTextCache.find(E);
  if (It != CondTextCache.end())
    return It->second;
  return CondTextCache[E] = printExpr(E);
}

const std::unordered_set<const VarDecl *> &
Engine::localsOf(const FunctionDecl *Fn) {
  auto It = FnLocalsCache.find(Fn);
  if (It != FnLocalsCache.end())
    return It->second;
  std::unordered_set<const VarDecl *> Locals;
  for (VarDecl *P : Fn->params())
    Locals.insert(P);
  collectLocalDecls(Fn->body(), Locals);
  return FnLocalsCache[Fn] = std::move(Locals);
}

Engine::PathState Engine::refine(const PathState &PS, const CallExpr *CE,
                                 const FunctionDecl *Caller,
                                 const FunctionDecl *Callee, RestoreInfo &RI) {
  PathState Out;
  Out.SMI.GState = PS.SMI.GState;
  Out.PathAnnotation = PS.PathAnnotation;
  const std::unordered_set<const VarDecl *> &CallerScope = localsOf(Caller);

  // Build the actual/formal pairs.
  for (unsigned I = 0; I < CE->numArgs() && I < Callee->numParams(); ++I) {
    VarDecl *Formal = Callee->param(I);
    if (Formal->name().empty())
      continue;
    RestoreInfo::ArgPair AP;
    AP.Actual = stripCasts(CE->arg(I));
    if (const auto *UO = dyn_cast<UnaryOperator>(AP.Actual)) {
      if (UO->opcode() == UnaryOperator::AddrOf) {
        AP.AddrOf = true;
        AP.ActualInner = stripCasts(UO->sub());
      }
    }
    auto RefIt = DeclRefCache.find(Formal);
    const Expr *FormalRef;
    if (RefIt != DeclRefCache.end()) {
      FormalRef = RefIt->second;
    } else {
      FormalRef = Ctx.create<DeclRefExpr>(Formal->loc(), Formal,
                                          Formal->type());
      DeclRefCache[Formal] = FormalRef;
    }
    AP.FormalRef = FormalRef;
    const Type *DerefTy =
        Formal->type() ? Formal->type()->pointeeOrElement() : nullptr;
    AP.FormalDeref = Ctx.create<UnaryOperator>(
        Formal->loc(), UnaryOperator::Deref, FormalRef,
        DerefTy ? DerefTy : FormalRef->type());
    RI.Args.push_back(AP);
  }

  for (const VarState &VS : PS.SMI.ActiveVars) {
    if (!VS.live())
      continue;
    if (VS.Inactive || !referencesAnyOf(VS.Tree, CallerScope)) {
      // Globals and file-statics pass across the boundary; file-statics are
      // temporarily inactivated while the analysis is in another file.
      VarState Clone = VS;
      std::vector<const VarDecl *> Statics;
      collectFileStatics(Clone.Tree, Statics);
      bool Inactive = false;
      for (const VarDecl *SD : Statics)
        if (SD->loc().fileID() != Callee->fileID())
          Inactive = true;
      Clone.Inactive = Inactive;
      Out.SMI.ActiveVars.push_back(std::move(Clone));
      continue;
    }
    // Caller-scope tree: try to retarget it through an argument (Table 2).
    const Expr *Sub = VS.Tree;
    for (const RestoreInfo::ArgPair &AP : RI.Args) {
      if (AP.AddrOf && AP.ActualInner)
        Sub = substituteExpr(Ctx, Sub, AP.ActualInner, AP.FormalDeref);
      else
        Sub = substituteExpr(Ctx, Sub, AP.Actual, AP.FormalRef);
    }
    if (Sub != VS.Tree && !referencesAnyOf(Sub, CallerScope)) {
      VarState Clone = VS;
      Clone.Tree = Sub;
      Clone.TreeKey = symbolize(exprKey(Sub));
      Clone.Interprocedural = true;
      Clone.CreatedAt = nullptr;
      Out.SMI.ActiveVars.push_back(std::move(Clone));
      RI.Saved.push_back(RestoreInfo::SavedInstance{VS, true});
    } else {
      // Local state not visible to the callee: saved and restored later.
      RI.Saved.push_back(RestoreInfo::SavedInstance{VS, false});
    }
  }
  return Out;
}

Engine::PathState Engine::restore(const PathState &CallerPS, SMInstance ExitSM,
                                  const RestoreInfo &RI,
                                  const FunctionDecl *Callee) {
  PathState Out;
  Out.VT = CallerPS.VT;
  Out.PathAnnotation = CallerPS.PathAnnotation;
  // Scope-leave end-of-path reports below fire with the caller's journal as
  // their witness (route-invariant: identical whether the exit SMI came from
  // a summary replay or inline analysis). followCall overwrites the
  // continuation's journal afterwards. The trail follows the same rule so
  // their fingerprints are route-invariant too.
  Out.Witness = CallerPS.Witness;
  Out.Trail = CallerPS.Trail;
  Out.SMI.GState = ExitSM.GState;

  bool ByRef = CurChecker->restoreArgsByReference();

  // Under by-value semantics, state attached to the formal itself or to a
  // dot-field chain of it lives in the callee's copy and must not flow back
  // (Table 2 rows 1 and 3, "state (xa) unchanged (by value)"). Indirected
  // shapes (*xf, xf->field, the &xa row) name caller memory and always
  // restore.
  auto ValueRooted = [&](const Expr *Tree) {
    for (;;) {
      for (const RestoreInfo::ArgPair &AP : RI.Args)
        if (!AP.AddrOf && exprEquivalent(Tree, AP.FormalRef))
          return true;
      const auto *ME = dyn_cast<MemberExpr>(Tree);
      if (!ME || ME->isArrow())
        return false;
      Tree = ME->base();
    }
  };

  for (VarState &VS : ExitSM.ActiveVars) {
    if (!VS.live())
      continue;
    if (!ByRef && ValueRooted(VS.Tree))
      continue;
    // Retarget callee-scope trees back into the caller (Table 2 restore).
    const Expr *Tree = VS.Tree;
    for (const RestoreInfo::ArgPair &AP : RI.Args) {
      if (AP.AddrOf && AP.ActualInner)
        Tree = substituteExpr(Ctx, Tree, AP.FormalDeref, AP.ActualInner);
      Tree = substituteExpr(Ctx, Tree, AP.FormalRef,
                            AP.AddrOf && AP.ActualInner ? AP.ActualInner
                                                        : AP.Actual);
    }
    if (referencesAnyOf(Tree, localsOf(Callee))) {
      // The object permanently leaves scope with the callee: $end_of_path$.
      ACtxImpl ACtx(*this, Out, Callee, 0, nullptr);
      CurChecker->checkEndOfPath(&VS, ACtx);
      continue;
    }
    VarState Clone = VS;
    Clone.Tree = Tree;
    Clone.TreeKey = symbolize(exprKey(Tree));
    // File-statics reactivate when the analysis returns to their file.
    std::vector<const VarDecl *> Statics;
    collectFileStatics(Tree, Statics);
    Clone.Inactive = false;
    for (const VarDecl *SD : Statics)
      if (SD->loc().fileID() != RI.CallerFileID)
        Clone.Inactive = true;
    Out.SMI.ActiveVars.push_back(std::move(Clone));
  }

  for (const RestoreInfo::SavedInstance &Saved : RI.Saved) {
    if (Saved.PassedToCallee) {
      if (ByRef)
        continue; // The callee's view came back (or the object stopped).
      // By-value: the caller's state is unchanged by the call.
      std::erase_if(Out.SMI.ActiveVars, [&](const VarState &VS) {
        return VS.TreeKey == Saved.VS.TreeKey;
      });
      Out.SMI.ActiveVars.push_back(Saved.VS);
      continue;
    }
    Out.SMI.ActiveVars.push_back(Saved.VS);
  }
  return Out;
}

std::vector<SMInstance> Engine::replaySummary(const FunctionDecl *Callee,
                                              const SMInstance &Refined,
                                              bool PartialOk) {
  FunctionSummaries &FS = Summaries[Callee];
  const CFG *G = CG.cfg(Callee);
  const BlockSummary &EntrySum = FS.entrySummary(*G);
  const std::set<SummaryEdge> &Edges = EntrySum.SuffixEdges;

  // Collect the applicable edges for the current state.
  struct Applicable {
    const SummaryEdge *E;
    const VarState *Source; ///< Incoming instance (null for add edges).
  };
  // Ordered by key *text*: PerTree's iteration order decides partition
  // assembly (and hence ActiveVars push order, and hence report bytes), so
  // it must match the historical string-keyed map exactly.
  std::map<uint32_t, std::vector<Applicable>, SymbolTextLess> PerTree;
  std::vector<int> GlobalExits;
  std::vector<const VarState *> Unmatched; ///< Kept verbatim (PartialOk).

  for (const SummaryEdge &E : Edges)
    if (E.isGlobalOnly() && E.From.GState == Refined.GState)
      GlobalExits.push_back(E.To.GState);
  if (GlobalExits.empty())
    GlobalExits.push_back(Refined.GState);

  for (const VarState &VS : Refined.ActiveVars) {
    if (!VS.live())
      continue;
    if (VS.Inactive) {
      Unmatched.push_back(&VS); // Invisible to the callee; persists.
      continue;
    }
    StateTuple T{Refined.GState, VS.TreeKey, VS.Value, VS.Data};
    bool Any = false;
    for (const SummaryEdge &E : Edges) {
      if (E.isAdd() || E.From != T)
        continue;
      PerTree[VS.TreeKey].push_back(Applicable{&E, &VS});
      Any = true;
    }
    if (!Any) {
      if (PartialOk)
        Unmatched.push_back(&VS); // Recursion: assume unchanged.
      // Otherwise the instance stopped on every path through the callee.
    }
  }
  // Add edges that can fire: trees the caller knows nothing about.
  for (const SummaryEdge &E : Edges) {
    if (!E.isAdd() || E.From.GState != Refined.GState)
      continue;
    if (Refined.findByKey(E.From.TreeKey))
      continue;
    PerTree[E.From.TreeKey].push_back(Applicable{&E, nullptr});
  }

  // Partition into disjoint exit states (Section 6.3, step 5): one exit
  // sm_instance per combination index; same-tree alternatives land in
  // different partitions.
  size_t NumParts = 1;
  for (const auto &[Key, List] : PerTree)
    NumParts = std::max(NumParts, List.size());

  std::vector<SMInstance> Out;
  std::set<std::string> LegacyDedup;
  std::set<uint64_t> ConsedDedup;
  for (int GExit : GlobalExits) {
    for (size_t Part = 0; Part != NumParts; ++Part) {
      SMInstance SMI;
      SMI.GState = GExit;
      for (const VarState *VS : Unmatched)
        SMI.ActiveVars.push_back(*VS);
      for (const auto &[Key, List] : PerTree) {
        const Applicable &A = List[Part % List.size()];
        // Edges are per-function paths: only those consistent with this
        // exit global state apply.
        if (A.E->To.GState != GExit && GlobalExits.size() > 1)
          continue;
        if (A.E->To.Value == StateStop)
          continue;
        VarState VS;
        if (A.Source) {
          VS = *A.Source;
        } else {
          // A callee-created instance surfacing in the caller. Deliberately
          // NOT marked Interprocedural: the inline route's restore() leaves
          // callee-created state unmarked (the Figure 2 ranking walkthrough
          // counts the caller-side use as the *local* error), and whether a
          // callsite replays a summary or descends inline is a cache-warmth
          // accident that varies with --jobs — the mark must not depend on
          // it. refine() marks state the caller passed in, on both routes.
          VS.OriginLoc = A.E->ToTree ? A.E->ToTree->loc() : SourceLoc();
          // The creation fact recorded with the add edge: replayed instances
          // must group and rank exactly like their inline-analyzed twins.
          VS.FactKey = A.E->FactKey;
        }
        VS.Tree = A.E->ToTree;
        if (!VS.Tree) {
          // No materialized tree survived; fall back to the source tree.
          if (!A.Source)
            continue;
          VS.Tree = A.Source->Tree;
        }
        VS.TreeKey = A.E->To.TreeKey;
        VS.Value = A.E->To.Value;
        VS.Data = A.E->To.Data;
        VS.CreatedAt = nullptr;
        SMI.ActiveVars.push_back(std::move(VS));
      }
      bool Fresh;
      if (Opts.EnableStateInterning)
        Fresh = ConsedDedup.insert(SetIntern.id(tuplesOf(SMI))).second;
      else
        Fresh = LegacyDedup.insert(exitStateKey(SMI, {})).second;
      if (Fresh)
        Out.push_back(std::move(SMI));
    }
  }
  return Out;
}

void Engine::followCall(FrameCtx &Frame, const BasicBlock *B,
                        TupleSpan EntrySnapshot, size_t NextIdx, PathState PS,
                        const CallExpr *CE, const FunctionDecl *Callee) {
  RestoreInfo RI;
  RI.CallerFileID = Frame.Fn->fileID();
  PathState Refined = refine(PS, CE, Frame.Fn, Callee, RI);

  // Witness route-invariance: whether this call is answered by a summary
  // replay (warm cache) or by inline analysis (cold cache) depends on which
  // roots this worker saw first, i.e. on --jobs. The caller's continuation
  // witness must not — so it is always rebuilt below as
  //   caller journal + one summary-application step + the per-object state
  //   diff between the refined entry and each callee exit,
  // identical on both routes. The callee's own journal (caller prefix + call
  // step + callee-internal steps) feeds only reports emitted *inside* the
  // callee during inline descent. Snapshot the entry states before the
  // descent mutates them.
  // Ordered by key text: iterated into witness steps, whose order is
  // report-visible under --explain.
  std::map<uint32_t, int, SymbolTextLess> WEntryStates;
  int WEntryG = Refined.SMI.GState;
  if (WitnessOn)
    for (const VarState &VS : Refined.SMI.ActiveVars)
      if (VS.live() && !VS.Inactive)
        WEntryStates[VS.TreeKey] = VS.Value;

  bool OnStack = Frame.CallStack->count(Callee) != 0;
  const CFG *CalleeCFG = CG.cfg(Callee);
  FunctionSummaries &CalleeFS = Summaries[Callee];

  std::vector<PathState> CalleeExits;
  bool Replayed = false;

  if (Opts.EnableFunctionSummaries) {
    const auto &EntryTuples = CalleeFS.entryTuples(*CalleeCFG);
    bool AllIn = false;
    uint32_t RefSetId = 0;
    std::vector<StateTuple> RefTuples = tuplesOf(Refined.SMI);
    if (Opts.EnableStateInterning) {
      // Consed fast path, mirroring the block cache: the entry Reached set
      // only grows within a checker run, so a positive memo stays true.
      RefSetId = SetIntern.id(RefTuples);
      AllIn = CalleeFS.EntryHitSets.count(RefSetId) != 0;
    }
    if (!AllIn) {
      AllIn = !EntryTuples.empty();
      for (const StateTuple &T : RefTuples)
        if (!EntryTuples.count(T)) {
          AllIn = false;
          break;
        }
      if (AllIn && Opts.EnableStateInterning)
        CalleeFS.EntryHitSets.insert(RefSetId);
    }
    if (AllIn || OnStack) {
      bump(Ctr.FunctionCacheHits);
      for (SMInstance &SMI : replaySummary(Callee, Refined.SMI, OnStack)) {
        PathState E;
        E.SMI = std::move(SMI);
        E.PathAnnotation = Refined.PathAnnotation;
        CalleeExits.push_back(std::move(E));
      }
      Replayed = true;
    }
  } else if (OnStack) {
    // Without summaries, recursion is broken by passing state through
    // unchanged.
    CalleeExits.push_back(Refined);
    Replayed = true;
  }

  if (!Replayed) {
    bump(Ctr.CallsFollowed);
    std::set<const FunctionDecl *> NewStack = *Frame.CallStack;
    NewStack.insert(Callee);
    // Reports emitted inside the callee fingerprint as "caller shape + call
    // step + callee-internal shape" (the trail mirror of the journal rule
    // below, minus the capture gate).
    Refined.Trail = PS.Trail;
    Refined.Trail.mix(WitnessStep::Kind::Call, "", "", Callee->name());
    if (WitnessOn) {
      // Reports emitted inside the callee carry the caller's journal plus
      // an explicit call step — the call-chain the --explain indentation
      // renders.
      Refined.Witness = PS.Witness;
      Refined.Witness.append(WitnessStep{WitnessStep::Kind::Call, CE->loc(),
                                         Frame.Depth, "", "",
                                         std::string(Callee->name())});
    }
    CalleeExits =
        analyzeFunction(Callee, Refined, std::move(NewStack), Frame.Depth + 1);
  }

  if (CalleeExits.empty()) {
    // The callee never returns in this state (killed paths / path limits):
    // the caller's path ends here.
    bump(Ctr.PathsExplored);
    return;
  }
  for (PathState &ExitPS : CalleeExits) {
    // Rebuild the continuation witness route-invariantly (see above): the
    // diff must be taken before restore() consumes the exit SMI.
    WitnessJournal ContWitness;
    if (WitnessOn) {
      ContWitness = PS.Witness;
      ContWitness.append(WitnessStep{WitnessStep::Kind::SummaryApply,
                                     CE->loc(), Frame.Depth, "", "",
                                     std::string(Callee->name())});
      std::map<uint32_t, int, SymbolTextLess> ExitStates;
      for (const VarState &VS : ExitPS.SMI.ActiveVars)
        if (VS.live() && !VS.Inactive)
          ExitStates[VS.TreeKey] = VS.Value;
      for (const auto &[Key, Value] : ExitStates) {
        auto It = WEntryStates.find(Key);
        if (It != WEntryStates.end() && It->second == Value)
          continue;
        ContWitness.append(WitnessStep{
            WitnessStep::Kind::Transition, CE->loc(), Frame.Depth,
            std::string(symbolText(Key)),
            It != WEntryStates.end() ? CurChecker->stateName(It->second)
                                     : std::string(),
            CurChecker->stateName(Value)});
      }
      for (const auto &[Key, Value] : WEntryStates)
        if (!ExitStates.count(Key))
          ContWitness.append(WitnessStep{
              WitnessStep::Kind::Transition, CE->loc(), Frame.Depth,
              std::string(symbolText(Key)), CurChecker->stateName(Value),
              CurChecker->stateName(StateStop)});
      if (ExitPS.SMI.GState != WEntryG)
        ContWitness.append(WitnessStep{
            WitnessStep::Kind::Transition, CE->loc(), Frame.Depth, "",
            CurChecker->stateName(WEntryG),
            CurChecker->stateName(ExitPS.SMI.GState)});
    }
    PathState Cont = restore(PS, std::move(ExitPS.SMI), RI, Callee);
    // Continuation trail, route-invariant by construction: the caller's
    // trail (copied by restore) plus one summary-application step — never
    // callee-internal events, which depend on replay-vs-inline routing.
    Cont.Trail.mix(WitnessStep::Kind::SummaryApply, "", "", Callee->name());
    if (WitnessOn)
      Cont.Witness = std::move(ContWitness);
    if (annotationRank(ExitPS.PathAnnotation) <
        annotationRank(Cont.PathAnnotation))
      Cont.PathAnnotation = ExitPS.PathAnnotation;
    processPoints(Frame, B, EntrySnapshot, NextIdx, std::move(Cont));
  }
}

std::vector<Engine::PathState>
Engine::analyzeFunction(const FunctionDecl *Fn, PathState PS,
                        std::set<const FunctionDecl *> Stack, unsigned Depth) {
  bump(Ctr.FunctionAnalyses);
  const CFG *G = CG.cfg(Fn);
  assert(G && "analyzeFunction requires a CFG");
  std::vector<PathState> Exits;
  ExitKeySet ExitKeys;
  FrameCtx Frame;
  Frame.Fn = Fn;
  Frame.G = G;
  // With function summaries disabled (ablation), block summaries must not
  // persist across activations: a second identical call would abort inside
  // the callee without producing the memoized exit states.
  FunctionSummaries LocalFS;
  Frame.FS = Opts.EnableFunctionSummaries ? &Summaries[Fn] : &LocalFS;
  if (Opts.EnableFunctionSummaries)
    TouchedThisRoot.push_back(Fn);
  Frame.ExitStates = &Exits;
  Frame.ExitKeys = &ExitKeys;
  Frame.CallStack = &Stack;
  Frame.Depth = Depth;
  traverseBlock(Frame, G->entry(), std::move(PS));
  return Exits;
}

void Engine::endOfPath(PathState &PS, const FunctionDecl *Root) {
  // Instances die with the program; the program itself terminates.
  for (VarState &VS : PS.SMI.ActiveVars) {
    if (!VS.live())
      continue;
    ACtxImpl ACtx(*this, PS, Root, 0, nullptr);
    CurChecker->checkEndOfPath(&VS, ACtx);
  }
  ACtxImpl ACtx(*this, PS, Root, 0, nullptr);
  CurChecker->checkEndOfPath(nullptr, ACtx);
}

bool Engine::rootAborted() {
  if (AbortKind != RootAbortKind::None)
    return true;
  if (DeadlineArmed && DeadlineExpired.load(std::memory_order_relaxed)) {
    AbortKind = RootAbortKind::Deadline;
    AbortReason = "deadline of " +
                  std::to_string(Opts.Reporting.RootDeadlineMs) +
                  "ms exceeded";
    bump(Ctr.DeadlineHits);
    return true;
  }
  if (Opts.RootPathBudget &&
      Ctr.PathsExplored->load(std::memory_order_relaxed) - RootPathsBase >
          Opts.RootPathBudget) {
    AbortKind = RootAbortKind::PathBudget;
    AbortReason = "root path budget of " +
                  std::to_string(Opts.RootPathBudget) + " paths exceeded";
    return true;
  }
  return false;
}

void Engine::rollbackRoot() {
  // Summaries touched by the aborted traversal are incomplete (some suffix
  // edges were never relaxed); a later root replaying one would silently
  // drop reports. Valid pre-existing summaries of touched functions go too —
  // re-deriving them is just work, never a behavior change.
  for (const FunctionDecl *Fn : TouchedThisRoot)
    Summaries.erase(Fn);
  // Undo annotation writes in reverse so the earliest previous value wins.
  for (auto It = AnnotJournal.rbegin(); It != AnnotJournal.rend(); ++It) {
    auto NodeIt = Annotations.find(It->Node);
    if (NodeIt == Annotations.end())
      continue;
    if (It->HadOld)
      NodeIt->second[It->Key] = It->Old;
    else
      NodeIt->second.erase(It->Key);
    if (NodeIt->second.empty())
      Annotations.erase(NodeIt);
  }
  AnnotJournal.clear();
  TouchedThisRoot.clear();
}

/// The span-arg spelling of a root outcome (job-agnostic).
static const char *rootAbortKindName(RootAbortKind K) {
  switch (K) {
  case RootAbortKind::None:
    return "ok";
  case RootAbortKind::Deadline:
    return "deadline";
  case RootAbortKind::PathBudget:
    return "path-budget";
  case RootAbortKind::StateLimit:
    return "state-limit";
  case RootAbortKind::CheckerFault:
    return "checker-fault";
  }
  return "ok";
}

RootOutcome Engine::analyzeRoot(Checker &C, const FunctionDecl *Root) {
  CurChecker = &C;
  refreshCheckerCells(C);
  RootOutcome Out;
  if (!CG.cfg(Root))
    return Out;
  bump(Ctr.RootsAnalyzed);

  // One trace buffer per analysis attempt, on the root's lane: buffers on a
  // lane open in attempt order (ladder retries are sequential), so the
  // merged stream is identical at any --jobs count.
  TraceBuffer *Buf = Trace ? Trace->openBuffer(laneOf(Root)) : nullptr;
  TraceSpan RootSpan(Buf, "root");
  RootSpan.arg("root", Root->name());
  RootSpan.arg("checker", C.name());

  // Fault boundary. Reports buffer into a scratch manager and are flushed
  // only on success — merge() replays add(), so dedup/ranking behave exactly
  // as if the reports had been added directly (this is the same replay the
  // sharded per-root buffers rely on). Side effects on shared state
  // (summaries, annotations) are journaled for rollback.
  AbortKind = RootAbortKind::None;
  AbortReason.clear();
  RootPathsBase = Ctr.PathsExplored->load(std::memory_order_relaxed);
  AnnotJournal.clear();
  TouchedThisRoot.clear();
  ReportManager Scratch;
  ReportManager *Target = Reports;
  Reports = &Scratch;
  DeadlineExpired.store(false, std::memory_order_relaxed);
  DeadlineArmed = Opts.Reporting.RootDeadlineMs != 0;
  {
    DeadlineScope Guard(DeadlineExpired, Opts.Reporting.RootDeadlineMs);
    PathState PS;
    PS.SMI.GState = C.initialGlobalState();
    std::set<const FunctionDecl *> Stack{Root};
    std::vector<PathState> Exits;
    {
      TraceSpan TraverseSpan(Buf, "traverse");
      Exits = analyzeFunction(Root, std::move(PS), Stack, 0);
    }
    {
      TraceSpan EndSpan(Buf, "end-of-path");
      for (PathState &E : Exits) {
        if (AbortKind != RootAbortKind::None)
          break;
        endOfPath(E, Root);
      }
    }
  }
  DeadlineArmed = false;
  Reports = Target;
  if (AbortKind == RootAbortKind::None) {
    Reports->merge(Scratch);
    AnnotJournal.clear();
    TouchedThisRoot.clear();
  } else {
    Out.Kind = AbortKind;
    Out.Reason = AbortReason;
    rollbackRoot();
    AbortKind = RootAbortKind::None;
    AbortReason.clear();
  }
  RootSpan.arg("outcome", rootAbortKindName(Out.Kind));
  // Per-root arena teardown: record the telemetry, then free every slab in
  // one sweep. An aborted root's transients die here too — the rollback
  // path never has to reason about them.
  bump(Ctr.ArenaBytes, RootArena.bytesAllocated());
  bump(Ctr.ArenaSlabs, RootArena.maxSlabs());
  RootArena.reset();
  return Out;
}

void Engine::beginChecker(Checker &C) {
  CurChecker = &C;
  // Force cell re-registration: a fresh Checker may reuse a destroyed one's
  // address, which the pointer guard alone would miss.
  CellsChecker = nullptr;
  refreshCheckerCells(C);
  Summaries.clear();
  // The summary memos hold consed set ids; ids and memos die together.
  SetIntern.clear();
  // Drop the dispatch memo unconditionally, for the same address-reuse
  // reason.
  DispatchBlockMemo.clear();
  MemoChecker = &C;
}

void Engine::run(Checker &C) {
  beginChecker(C);
  // Raw mode: outcomes are dropped (an aborted root is simply skipped).
  // XgccTool::run layers the degradation ladder and incident records on top.
  for (const FunctionDecl *Root : CG.roots())
    analyzeRoot(C, Root);
}

EngineOptions mc::degradedOptions(const EngineOptions &Base, unsigned Stage) {
  EngineOptions O = Base;
  // Stage 1: stop following calls — the usual budget blower.
  O.Interprocedural = false;
  if (Stage >= 2) {
    // Stage 2: also halve the path budgets.
    O.MaxPathsPerFunction = std::max<uint64_t>(Base.MaxPathsPerFunction / 2, 1);
    if (Base.RootPathBudget)
      O.RootPathBudget = std::max<uint64_t>(Base.RootPathBudget / 2, 1);
  }
  if (Stage >= 3) {
    // Stage 3: intraprocedural skim. Truncate (soft valves) instead of
    // aborting (RootPathBudget off) so the stage always yields a result.
    O.MaxPathsPerFunction = std::min<uint64_t>(O.MaxPathsPerFunction, 256);
    O.MaxPathLength = std::min(O.MaxPathLength, 1024u);
    O.RootPathBudget = 0;
  }
  return O;
}
