//===- engine/StateSetInterner.h - Hash-consed tuple sets -------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consing for state-tuple sets. The engine consults the same tuple
/// sets over and over — the block cache's subset test (Section 5.2), the
/// summary entryTuples lookup (Section 6.3), and exit-state dedup all start
/// from "the multiset of tuples of this SMInstance". Consing canonicalizes
/// each multiset once (sort by flat fields, which is a total order because
/// symbols are canonical) and hands back a dense 32-bit id; repeat lookups
/// of a set already seen reduce to one hash of 16-byte PODs plus an integer
/// memo probe instead of a deep walk over `std::set<StateTuple>`.
///
/// Ids are engine-private and never reach output: report bytes depend only
/// on tuple *text* ordering, so consing order (which varies with worker
/// schedule) is invisible. Cleared with the summaries at checker start.
///
//===----------------------------------------------------------------------===//

#ifndef MC_ENGINE_STATESETINTERNER_H
#define MC_ENGINE_STATESETINTERNER_H

#include "metal/State.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace mc {

/// Canonicalizes tuple multisets to dense ids (> 0). Worker-private (one
/// per Engine): no locking on the hot path.
class StateSetInterner {
public:
  /// The canonical id of the multiset \p Tuples (order-insensitive).
  uint32_t id(const StateTuple *Tuples, size_t N) {
    Scratch.assign(Tuples, Tuples + N);
    // Sort by the flat fields — cheap, and total because symbol ids are
    // canonical (equal text <=> equal id). This is an internal canonical
    // order, unrelated to the text order used for output.
    std::sort(Scratch.begin(), Scratch.end(),
              [](const StateTuple &A, const StateTuple &B) {
                if (A.GState != B.GState)
                  return A.GState < B.GState;
                if (A.TreeKey != B.TreeKey)
                  return A.TreeKey < B.TreeKey;
                if (A.Value != B.Value)
                  return A.Value < B.Value;
                return A.Data < B.Data;
              });
    auto It = Ids.find(Scratch);
    if (It != Ids.end())
      return It->second;
    uint32_t Id = uint32_t(Ids.size()) + 1;
    Ids.emplace(Scratch, Id);
    return Id;
  }

  uint32_t id(const std::vector<StateTuple> &Tuples) {
    return id(Tuples.data(), Tuples.size());
  }
  uint32_t id(TupleSpan Span) { return id(Span.begin(), Span.size()); }

  /// Number of distinct sets consed so far.
  size_t size() const { return Ids.size(); }

  /// Drops every id. Callers holding ids (summary memos) must be cleared
  /// in the same breath — the engine does both at checker start.
  void clear() { Ids.clear(); }

private:
  struct VecHash {
    size_t operator()(const std::vector<StateTuple> &V) const {
      size_t H = 0x811c9dc5u ^ V.size();
      StateTupleHash TH;
      for (const StateTuple &T : V)
        H = (H ^ TH(T)) * 0x100000001b3ull;
      return H;
    }
  };

  std::unordered_map<std::vector<StateTuple>, uint32_t, VecHash> Ids;
  std::vector<StateTuple> Scratch;
};

} // namespace mc

#endif // MC_ENGINE_STATESETINTERNER_H
