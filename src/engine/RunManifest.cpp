//===- engine/RunManifest.cpp - The unified run-report schema -------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/RunManifest.h"

#include "support/RawOstream.h"

#include <algorithm>

using namespace mc;

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

static void writeReportingJson(raw_ostream &OS, const ReportingOptions &R,
                               const char *Indent) {
  OS << "{\n";
  OS << Indent << "  \"show_stats\": " << R.ShowStats << ",\n";
  OS << Indent << "  \"stats_json\": ";
  writeJsonString(OS, R.StatsJsonPath);
  OS << ",\n";
  OS << Indent << "  \"trace_out\": ";
  writeJsonString(OS, R.TraceOutPath);
  OS << ",\n";
  OS << Indent << "  \"profile_top_n\": " << R.ProfileTopN << ",\n";
  OS << Indent << "  \"explain_top_n\": " << R.ExplainTopN << ",\n";
  OS << Indent << "  \"capture_witness\": " << R.CaptureWitness << ",\n";
  OS << Indent << "  \"deadline_ms\": " << R.RootDeadlineMs << ",\n";
  OS << Indent << "  \"fail_on\": \"" << failPolicyName(R.FailOn) << "\"\n";
  OS << Indent << "}";
}

static void writeOptionsJson(raw_ostream &OS, const EngineOptions &O) {
  OS << "{\n";
  OS << "    \"block_cache\": " << O.EnableBlockCache << ",\n";
  OS << "    \"function_summaries\": " << O.EnableFunctionSummaries << ",\n";
  OS << "    \"false_path_pruning\": " << O.EnableFalsePathPruning << ",\n";
  OS << "    \"auto_kill\": " << O.EnableAutoKill << ",\n";
  OS << "    \"synonyms\": " << O.EnableSynonyms << ",\n";
  OS << "    \"interprocedural\": " << O.Interprocedural << ",\n";
  OS << "    \"dispatch_index\": " << O.EnableDispatchIndex << ",\n";
  OS << "    \"state_interning\": " << O.EnableStateInterning << ",\n";
  OS << "    \"max_paths_per_function\": " << O.MaxPathsPerFunction << ",\n";
  OS << "    \"max_path_length\": " << O.MaxPathLength << ",\n";
  OS << "    \"max_call_depth\": " << O.MaxCallDepth << ",\n";
  OS << "    \"root_path_budget\": " << O.RootPathBudget << ",\n";
  OS << "    \"max_active_states\": " << O.MaxActiveStates << ",\n";
  OS << "    \"jobs\": " << O.Jobs << ",\n";
  OS << "    \"reporting\": ";
  writeReportingJson(OS, O.Reporting, "    ");
  OS << "\n  }";
}

void RunManifest::writeJson(raw_ostream &OS) const {
  OS << "{\n";
  OS << "  \"schema\": ";
  writeJsonString(OS, Schema);
  OS << ",\n  \"tool\": ";
  writeJsonString(OS, Tool);
  OS << ",\n  \"version\": ";
  writeJsonString(OS, Version);
  OS << ",\n  \"parse_ok\": " << ParseOk;
  OS << ",\n  \"report_count\": " << ReportCount;
  OS << ",\n  \"reports\": [";
  for (size_t RI = 0; RI != Reports.size(); ++RI) {
    const ManifestReport &R = Reports[RI];
    OS << (RI ? ",\n    {" : "\n    {");
    OS << "\"checker\": ";
    writeJsonString(OS, R.Checker);
    OS << ", \"file\": ";
    writeJsonString(OS, R.File);
    OS << ", \"line\": " << R.Line;
    OS << ", \"message\": ";
    writeJsonString(OS, R.Message);
    OS << ", \"fingerprint\": ";
    writeJsonString(OS, R.Fingerprint);
    if (!R.Lifecycle.empty()) {
      OS << ", \"lifecycle\": ";
      writeJsonString(OS, R.Lifecycle);
    }
    OS << '}';
  }
  OS << (Reports.empty() ? "]" : "\n  ]");
  if (Baseline.Enabled) {
    OS << ",\n  \"baseline\": {\"run\": " << Baseline.RunOrdinal
       << ", \"new\": " << Baseline.NewCount
       << ", \"known\": " << Baseline.KnownCount
       << ", \"fixed\": " << Baseline.FixedCount
       << ", \"suppressed\": " << Baseline.SuppressedCount << '}';
  }
  OS << ",\n  \"options\": ";
  writeOptionsJson(OS, Options);
  OS << ",\n  \"metrics\": {";
  bool First = true;
  for (const auto &[Name, Value] : Metrics) {
    if (!First)
      OS << ',';
    First = false;
    OS << "\n    ";
    writeJsonString(OS, Name);
    OS << ": " << Value;
  }
  OS << (First ? "},\n" : "\n  },\n");
  OS << "  \"incidents\": ";
  renderIncidentsJson(OS, Incidents);
  OS << ",\n  \"witnesses\": [";
  for (size_t WI = 0; WI != Witnesses.size(); ++WI) {
    const ManifestWitness &W = Witnesses[WI];
    OS << (WI ? ",\n    {\n" : "\n    {\n");
    OS << "      \"checker\": ";
    writeJsonString(OS, W.Checker);
    OS << ",\n      \"file\": ";
    writeJsonString(OS, W.File);
    OS << ",\n      \"line\": " << W.Line;
    OS << ",\n      \"message\": ";
    writeJsonString(OS, W.Message);
    OS << ",\n      \"dropped_steps\": " << W.DroppedSteps;
    OS << ",\n      \"steps\": [";
    for (size_t SI = 0; SI != W.Steps.size(); ++SI) {
      const ManifestWitnessStep &S = W.Steps[SI];
      OS << (SI ? ",\n        {" : "\n        {");
      OS << "\"kind\": ";
      writeJsonString(OS, S.Kind);
      OS << ", \"file\": ";
      writeJsonString(OS, S.File);
      OS << ", \"line\": " << S.Line;
      OS << ", \"depth\": " << S.Depth;
      OS << ", \"object\": ";
      writeJsonString(OS, S.Object);
      OS << ", \"from\": ";
      writeJsonString(OS, S.From);
      OS << ", \"to\": ";
      writeJsonString(OS, S.To);
      OS << '}';
    }
    OS << (W.Steps.empty() ? "]\n    }" : "\n      ]\n    }");
  }
  OS << (Witnesses.empty() ? "]\n}\n" : "\n  ]\n}\n");
}

//===----------------------------------------------------------------------===//
// Parsing (strict subset: objects/arrays/strings/unsigned ints/bools)
//===----------------------------------------------------------------------===//

namespace {

class ManifestParser {
public:
  ManifestParser(std::string_view Text, std::string *Err)
      : Text(Text), Err(Err) {}

  bool parse(RunManifest &Out) {
    skipWs();
    if (!parseManifestObject(Out))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing content after manifest object");
    return true;
  }

private:
  std::string_view Text;
  std::string *Err;
  size_t Pos = 0;

  bool fail(const char *Msg) {
    if (Err) {
      *Err = Msg;
      *Err += " at offset ";
      *Err += std::to_string(Pos);
    }
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool expect(char C) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail("unexpected character");
    ++Pos;
    return true;
  }

  bool peekIs(char C) {
    skipWs();
    return Pos < Text.size() && Text[Pos] == C;
  }

  bool parseString(std::string &Out) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"': Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/': Out += '/'; break;
      case 'n': Out += '\n'; break;
      case 't': Out += '\t'; break;
      case 'r': Out += '\r'; break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned V = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= H - '0';
          else if (H >= 'a' && H <= 'f')
            V |= H - 'a' + 10;
          else if (H >= 'A' && H <= 'F')
            V |= H - 'A' + 10;
          else
            return fail("bad \\u escape");
        }
        // The writer only emits \u00XX for control bytes.
        Out += (char)(V & 0xff);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    if (Pos >= Text.size())
      return fail("unterminated string");
    ++Pos; // closing quote
    return true;
  }

  bool parseUInt(uint64_t &Out) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
      return fail("expected number");
    Out = 0;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      Out = Out * 10 + (Text[Pos++] - '0');
    return true;
  }

  bool parseBool(bool &Out) {
    skipWs();
    if (Text.substr(Pos, 4) == "true") {
      Pos += 4;
      Out = true;
      return true;
    }
    if (Text.substr(Pos, 5) == "false") {
      Pos += 5;
      Out = false;
      return true;
    }
    return fail("expected boolean");
  }

  /// Skips any value (for unknown keys — forward compatibility).
  bool skipValue() {
    skipWs();
    if (Pos >= Text.size())
      return fail("expected value");
    char C = Text[Pos];
    if (C == '"') {
      std::string Tmp;
      return parseString(Tmp);
    }
    if (C == '{' || C == '[') {
      char Close = C == '{' ? '}' : ']';
      ++Pos;
      skipWs();
      if (peekIs(Close)) {
        ++Pos;
        return true;
      }
      for (;;) {
        if (C == '{') {
          std::string Key;
          if (!parseString(Key) || !expect(':'))
            return false;
        }
        if (!skipValue())
          return false;
        skipWs();
        if (peekIs(',')) {
          ++Pos;
          continue;
        }
        return expect(Close);
      }
    }
    if (C == 't' || C == 'f') {
      bool B;
      return parseBool(B);
    }
    if (C == '-' || (C >= '0' && C <= '9')) {
      if (C == '-')
        ++Pos;
      uint64_t N;
      return parseUInt(N);
    }
    return fail("unsupported value");
  }

  /// Drives `{ "key": <value>, ... }` with a per-key callback.
  template <typename KeyFn> bool parseObject(KeyFn &&OnKey) {
    if (!expect('{'))
      return false;
    if (peekIs('}')) {
      ++Pos;
      return true;
    }
    for (;;) {
      std::string Key;
      if (!parseString(Key) || !expect(':'))
        return false;
      if (!OnKey(Key))
        return false;
      skipWs();
      if (peekIs(',')) {
        ++Pos;
        continue;
      }
      return expect('}');
    }
  }

  bool parseReporting(ReportingOptions &R) {
    return parseObject([&](const std::string &Key) {
      uint64_t N;
      if (Key == "show_stats")
        return parseBool(R.ShowStats);
      if (Key == "stats_json")
        return parseString(R.StatsJsonPath);
      if (Key == "trace_out")
        return parseString(R.TraceOutPath);
      if (Key == "profile_top_n") {
        if (!parseUInt(N))
          return false;
        R.ProfileTopN = (unsigned)N;
        return true;
      }
      if (Key == "explain_top_n") {
        if (!parseUInt(N))
          return false;
        R.ExplainTopN = (unsigned)N;
        return true;
      }
      if (Key == "capture_witness")
        return parseBool(R.CaptureWitness);
      if (Key == "deadline_ms")
        return parseUInt(R.RootDeadlineMs);
      if (Key == "fail_on") {
        std::string S;
        if (!parseString(S))
          return false;
        return parseFailPolicy(S, R.FailOn) || fail("unknown fail_on value");
      }
      return skipValue();
    });
  }

  bool parseOptions(EngineOptions &O) {
    return parseObject([&](const std::string &Key) {
      uint64_t N;
      if (Key == "block_cache")
        return parseBool(O.EnableBlockCache);
      if (Key == "function_summaries")
        return parseBool(O.EnableFunctionSummaries);
      if (Key == "false_path_pruning")
        return parseBool(O.EnableFalsePathPruning);
      if (Key == "auto_kill")
        return parseBool(O.EnableAutoKill);
      if (Key == "synonyms")
        return parseBool(O.EnableSynonyms);
      if (Key == "interprocedural")
        return parseBool(O.Interprocedural);
      if (Key == "dispatch_index")
        return parseBool(O.EnableDispatchIndex);
      if (Key == "state_interning")
        return parseBool(O.EnableStateInterning);
      if (Key == "max_paths_per_function")
        return parseUInt(O.MaxPathsPerFunction);
      if (Key == "max_path_length") {
        if (!parseUInt(N))
          return false;
        O.MaxPathLength = (unsigned)N;
        return true;
      }
      if (Key == "max_call_depth") {
        if (!parseUInt(N))
          return false;
        O.MaxCallDepth = (unsigned)N;
        return true;
      }
      if (Key == "root_path_budget")
        return parseUInt(O.RootPathBudget);
      if (Key == "max_active_states")
        return parseUInt(O.MaxActiveStates);
      if (Key == "jobs") {
        if (!parseUInt(N))
          return false;
        O.Jobs = (unsigned)N;
        return true;
      }
      if (Key == "reporting")
        return parseReporting(O.Reporting);
      return skipValue();
    });
  }

  bool parseMetrics(MetricsSnapshot &M) {
    return parseObject([&](const std::string &Key) {
      uint64_t N;
      if (!parseUInt(N))
        return false;
      M.add(Key, N);
      return true;
    });
  }

  bool parseIncident(RootIncident &Inc) {
    return parseObject([&](const std::string &Key) {
      if (Key == "root")
        return parseString(Inc.Root);
      if (Key == "checker")
        return parseString(Inc.Checker);
      if (Key == "outcome") {
        std::string S;
        if (!parseString(S))
          return false;
        Inc.Quarantined = S == "quarantined";
        return Inc.Quarantined || S == "degraded" ||
               fail("unknown incident outcome");
      }
      if (Key == "fault")
        return parseBool(Inc.Fault);
      if (Key == "stage") {
        uint64_t N;
        if (!parseUInt(N))
          return false;
        Inc.Stage = (unsigned)N;
        return true;
      }
      if (Key == "reason")
        return parseString(Inc.Reason);
      return skipValue();
    });
  }

  bool parseIncidents(std::vector<RootIncident> &Out) {
    if (!expect('['))
      return false;
    if (peekIs(']')) {
      ++Pos;
      return true;
    }
    for (;;) {
      RootIncident Inc;
      if (!parseIncident(Inc))
        return false;
      Out.push_back(std::move(Inc));
      skipWs();
      if (peekIs(',')) {
        ++Pos;
        continue;
      }
      return expect(']');
    }
  }

  bool parseWitnessStep(ManifestWitnessStep &S) {
    return parseObject([&](const std::string &Key) {
      if (Key == "kind")
        return parseString(S.Kind);
      if (Key == "file")
        return parseString(S.File);
      if (Key == "line")
        return parseUInt(S.Line);
      if (Key == "depth")
        return parseUInt(S.Depth);
      if (Key == "object")
        return parseString(S.Object);
      if (Key == "from")
        return parseString(S.From);
      if (Key == "to")
        return parseString(S.To);
      return skipValue();
    });
  }

  bool parseWitness(ManifestWitness &W) {
    return parseObject([&](const std::string &Key) {
      if (Key == "checker")
        return parseString(W.Checker);
      if (Key == "file")
        return parseString(W.File);
      if (Key == "line")
        return parseUInt(W.Line);
      if (Key == "message")
        return parseString(W.Message);
      if (Key == "dropped_steps")
        return parseUInt(W.DroppedSteps);
      if (Key == "steps") {
        if (!expect('['))
          return false;
        if (peekIs(']')) {
          ++Pos;
          return true;
        }
        for (;;) {
          ManifestWitnessStep S;
          if (!parseWitnessStep(S))
            return false;
          W.Steps.push_back(std::move(S));
          skipWs();
          if (peekIs(',')) {
            ++Pos;
            continue;
          }
          return expect(']');
        }
      }
      return skipValue();
    });
  }

  bool parseWitnesses(std::vector<ManifestWitness> &Out) {
    if (!expect('['))
      return false;
    if (peekIs(']')) {
      ++Pos;
      return true;
    }
    for (;;) {
      ManifestWitness W;
      if (!parseWitness(W))
        return false;
      Out.push_back(std::move(W));
      skipWs();
      if (peekIs(',')) {
        ++Pos;
        continue;
      }
      return expect(']');
    }
  }

  bool parseReport(ManifestReport &R) {
    return parseObject([&](const std::string &Key) {
      if (Key == "checker")
        return parseString(R.Checker);
      if (Key == "file")
        return parseString(R.File);
      if (Key == "line")
        return parseUInt(R.Line);
      if (Key == "message")
        return parseString(R.Message);
      if (Key == "fingerprint")
        return parseString(R.Fingerprint);
      if (Key == "lifecycle")
        return parseString(R.Lifecycle);
      return skipValue();
    });
  }

  bool parseReports(std::vector<ManifestReport> &Out) {
    if (!expect('['))
      return false;
    if (peekIs(']')) {
      ++Pos;
      return true;
    }
    for (;;) {
      ManifestReport R;
      if (!parseReport(R))
        return false;
      Out.push_back(std::move(R));
      skipWs();
      if (peekIs(',')) {
        ++Pos;
        continue;
      }
      return expect(']');
    }
  }

  bool parseBaseline(ManifestBaseline &B) {
    B.Enabled = true; // The key is only written when a baseline was active.
    return parseObject([&](const std::string &Key) {
      if (Key == "run")
        return parseUInt(B.RunOrdinal);
      if (Key == "new")
        return parseUInt(B.NewCount);
      if (Key == "known")
        return parseUInt(B.KnownCount);
      if (Key == "fixed")
        return parseUInt(B.FixedCount);
      if (Key == "suppressed")
        return parseUInt(B.SuppressedCount);
      return skipValue();
    });
  }

  bool parseManifestObject(RunManifest &Out) {
    return parseObject([&](const std::string &Key) {
      if (Key == "schema")
        return parseString(Out.Schema);
      if (Key == "tool")
        return parseString(Out.Tool);
      if (Key == "version")
        return parseString(Out.Version);
      if (Key == "parse_ok")
        return parseBool(Out.ParseOk);
      if (Key == "report_count")
        return parseUInt(Out.ReportCount);
      if (Key == "reports")
        return parseReports(Out.Reports);
      if (Key == "baseline")
        return parseBaseline(Out.Baseline);
      if (Key == "options")
        return parseOptions(Out.Options);
      if (Key == "metrics")
        return parseMetrics(Out.Metrics);
      if (Key == "incidents")
        return parseIncidents(Out.Incidents);
      if (Key == "witnesses")
        return parseWitnesses(Out.Witnesses);
      return skipValue();
    });
  }
};

} // namespace

bool mc::parseRunManifest(std::string_view Text, RunManifest &Out,
                          std::string *Err) {
  ManifestParser P(Text, Err);
  RunManifest Parsed;
  // Clear the defaults that accumulate (the rest are overwritten by parse).
  Parsed.Metrics = MetricsSnapshot();
  Parsed.Incidents.clear();
  Parsed.Witnesses.clear();
  Parsed.Reports.clear();
  if (!P.parse(Parsed))
    return false;
  Out = std::move(Parsed);
  return true;
}

//===----------------------------------------------------------------------===//
// Text views
//===----------------------------------------------------------------------===//

void mc::formatStatsText(const MetricsSnapshot &M, raw_ostream &OS) {
  bool First = true;
#define MC_METRIC_STAT(Field, DottedName, StatsKey, BenchKey)                  \
  if (*StatsKey) {                                                             \
    if (!First)                                                                \
      OS << ' ';                                                               \
    First = false;                                                             \
    OS << StatsKey << '=' << M.value(DottedName);                              \
  }
  MC_ENGINE_METRICS(MC_METRIC_STAT)
#undef MC_METRIC_STAT
  OS << '\n';
}

void mc::formatProfileText(const MetricsSnapshot &M, unsigned TopN,
                           raw_ostream &OS) {
  // Per-checker attribution lives under "checker.<name>.<suffix>". Checker
  // names may themselves contain dots (metal file paths), so rows are
  // recovered by matching the known suffixes, not by splitting on '.'.
  struct Row {
    std::string Name;
    uint64_t Tried = 0, Fired = 0, States = 0, Faults = 0, Reports = 0;
    uint64_t Witness = 0;
    uint64_t CalloutNs = 0;
  };
  static constexpr struct {
    const char *Suffix;
    uint64_t Row::*Member;
  } Suffixes[] = {
      {".transitions.tried", &Row::Tried},
      {".transitions.fired", &Row::Fired},
      {".states.created", &Row::States},
      {".faults", &Row::Faults},
      {".reports", &Row::Reports},
      {".witness.steps", &Row::Witness},
      {".callout_ns", &Row::CalloutNs},
  };

  std::vector<Row> Rows;
  auto RowOf = [&](std::string_view Name) -> Row & {
    for (Row &R : Rows)
      if (R.Name == Name)
        return R;
    Rows.push_back(Row{std::string(Name)});
    return Rows.back();
  };
  constexpr std::string_view Prefix = "checker.";
  for (const auto &[Name, Value] : M) {
    std::string_view N = Name;
    if (N.substr(0, Prefix.size()) != Prefix)
      continue;
    for (const auto &S : Suffixes) {
      std::string_view Suf = S.Suffix;
      if (N.size() <= Prefix.size() + Suf.size() ||
          N.substr(N.size() - Suf.size()) != Suf)
        continue;
      std::string_view Checker =
          N.substr(Prefix.size(), N.size() - Prefix.size() - Suf.size());
      RowOf(Checker).*(S.Member) = Value;
      break;
    }
  }

  std::sort(Rows.begin(), Rows.end(), [](const Row &A, const Row &B) {
    if (A.CalloutNs != B.CalloutNs)
      return A.CalloutNs > B.CalloutNs;
    if (A.Tried != B.Tried)
      return A.Tried > B.Tried;
    return A.Name < B.Name;
  });

  size_t Shown = std::min<size_t>(TopN, Rows.size());
  OS << "---- profile: top " << (unsigned long long)Shown << " of "
     << (unsigned long long)Rows.size() << " checker(s) by callout time ----\n";
  for (size_t I = 0; I != Shown; ++I) {
    const Row &R = Rows[I];
    OS << "  " << (unsigned long long)(I + 1) << ". ";
    OS.padToColumn(R.Name, 20);
    OS.printf(" callout_ms=%.3f", (double)R.CalloutNs / 1e6);
    OS << " tried=" << R.Tried << " fired=" << R.Fired
       << " states=" << R.States << " reports=" << R.Reports
       << " faults=" << R.Faults << " witness=" << R.Witness << '\n';
  }
}
