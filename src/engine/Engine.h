//===- engine/Engine.h - The xgcc analysis engine ---------------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis engine of Sections 5 and 6: a depth-first, one-execution-
/// path-at-a-time traversal of the supergraph that executes a checker at
/// every program point; block-level state caching; suffix and function
/// summaries with the relax pass; context-sensitive, top-down
/// interprocedural analysis with refine/restore at call boundaries
/// (Table 2); and the transparent supporting analyses of Section 8 (killing
/// redefined variables, synonyms, false-path pruning).
///
//===----------------------------------------------------------------------===//

#ifndef MC_ENGINE_ENGINE_H
#define MC_ENGINE_ENGINE_H

#include "cfg/CallGraph.h"
#include "engine/Summaries.h"
#include "fpp/ValueTracker.h"
#include "metal/Checker.h"
#include "report/ReportManager.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace mc {

/// Engine feature toggles; the benches flip these to measure each
/// mechanism's contribution.
struct EngineOptions {
  bool EnableBlockCache = true;       ///< Section 5.2 block summaries.
  bool EnableFunctionSummaries = true; ///< Section 6.2 function summaries.
  bool EnableFalsePathPruning = true; ///< Section 8 FPP.
  bool EnableAutoKill = true;         ///< Section 8 killing (AND checker knob).
  bool EnableSynonyms = true;         ///< Section 8 synonyms (AND checker knob).
  bool Interprocedural = true;        ///< Follow calls at all.
  /// Compiled pattern-dispatch index + per-block applicable-transition memo
  /// (--no-dispatch-index falls back to trying every transition everywhere).
  bool EnableDispatchIndex = true;
  /// Safety valves for cache-off configurations: a function analysis stops
  /// exploring after this many completed paths, and a single path aborts
  /// after this many blocks (without caching, loops never converge).
  uint64_t MaxPathsPerFunction = 1u << 20;
  unsigned MaxPathLength = 4096;
  unsigned MaxCallDepth = 64;
  /// Fault-containment valves. Unlike the truncating valves above (which
  /// quietly stop exploring and keep the partial result), these abort the
  /// whole root: its buffered reports are discarded and the driver walks the
  /// degradation ladder (see degradedOptions). RootDeadlineMs is wall-clock
  /// per root, checked cooperatively at block granularity via an atomic flag
  /// (0 = no deadline). RootPathBudget is a hard cap on paths explored per
  /// root across all frames (0 = unlimited). MaxActiveStates aborts when a
  /// runaway checker grows per-path state without bound.
  uint64_t RootDeadlineMs = 0;
  uint64_t RootPathBudget = 0;
  uint64_t MaxActiveStates = 1u << 16;
  /// Worker threads for root-function analysis and pass-1 parsing. 1 = the
  /// classic serial engine; 0 = one per hardware thread. Each worker owns a
  /// private Engine (caches, stats, report buffer); workers share only the
  /// immutable AST/CFG/call graph. See docs/INTERNALS.md "Threading model".
  unsigned Jobs = 1;

  friend bool operator==(const EngineOptions &,
                         const EngineOptions &) = default;
};

/// Work counters; the scaling benches report these.
struct EngineStats {
  uint64_t PointsVisited = 0;
  uint64_t BlocksVisited = 0;
  uint64_t PathsExplored = 0;
  uint64_t BlockCacheHits = 0;
  uint64_t FunctionCacheHits = 0;
  uint64_t FunctionAnalyses = 0;
  uint64_t CallsFollowed = 0;
  uint64_t PathsPruned = 0;
  uint64_t KillsApplied = 0;
  uint64_t SynonymsCreated = 0;
  uint64_t PathLimitHits = 0;
  /// Dispatch-index telemetry: consultations, candidates that ran full
  /// matching, transitions skipped without matching, and whole blocks whose
  /// checker dispatch was skipped via the per-block memo.
  uint64_t IndexPointLookups = 0;
  uint64_t IndexCandidatesTried = 0;
  uint64_t IndexTransitionsSkipped = 0;
  uint64_t IndexBlocksSkipped = 0;
  /// Fault-containment telemetry: hard aborts (deadline / state valve) seen
  /// by this engine, and the driver-level outcome counters (roots that ended
  /// degraded or quarantined, and how many ladder retries ran).
  uint64_t DeadlineHits = 0;
  uint64_t StateLimitHits = 0;
  uint64_t RootsDegraded = 0;
  uint64_t RootsQuarantined = 0;
  uint64_t DegradationRetries = 0;

  /// Adds \p O's counters into this one. Used to fold per-worker engine
  /// stats into one tool-level total; summation is order-free, so the merged
  /// counters do not depend on worker interleaving.
  void merge(const EngineStats &O) {
    PointsVisited += O.PointsVisited;
    BlocksVisited += O.BlocksVisited;
    PathsExplored += O.PathsExplored;
    BlockCacheHits += O.BlockCacheHits;
    FunctionCacheHits += O.FunctionCacheHits;
    FunctionAnalyses += O.FunctionAnalyses;
    CallsFollowed += O.CallsFollowed;
    PathsPruned += O.PathsPruned;
    KillsApplied += O.KillsApplied;
    SynonymsCreated += O.SynonymsCreated;
    PathLimitHits += O.PathLimitHits;
    IndexPointLookups += O.IndexPointLookups;
    IndexCandidatesTried += O.IndexCandidatesTried;
    IndexTransitionsSkipped += O.IndexTransitionsSkipped;
    IndexBlocksSkipped += O.IndexBlocksSkipped;
    DeadlineHits += O.DeadlineHits;
    StateLimitHits += O.StateLimitHits;
    RootsDegraded += O.RootsDegraded;
    RootsQuarantined += O.RootsQuarantined;
    DegradationRetries += O.DegradationRetries;
  }

  friend bool operator==(const EngineStats &, const EngineStats &) = default;
};

/// Why analyzeRoot abandoned a root. The library builds with
/// -fno-exceptions, so faults are cooperative: the engine's budget valves
/// and AnalysisContext::raiseFault set an abort latch that the traversal
/// polls at block granularity.
enum class RootAbortKind {
  None,         ///< Root completed (possibly truncated by the soft valves).
  Deadline,     ///< EngineOptions::RootDeadlineMs elapsed.
  PathBudget,   ///< EngineOptions::RootPathBudget exceeded.
  StateLimit,   ///< EngineOptions::MaxActiveStates exceeded.
  CheckerFault, ///< The checker raised a fault via raiseFault().
};

/// Outcome of one analyzeRoot() call. On abort the root's buffered reports
/// were discarded and its summary/annotation side effects rolled back, so
/// the caller can retry with cheaper options or quarantine the root.
struct RootOutcome {
  RootAbortKind Kind = RootAbortKind::None;
  std::string Reason;
  bool aborted() const { return Kind != RootAbortKind::None; }
};

/// The degradation ladder: a root that blows a budget is retried with
/// progressively cheaper options. Stage 1 turns interprocedural analysis
/// off; stage 2 also halves the path budgets; stage 3 is an
/// intraprocedural-only skim that truncates instead of aborting, so it
/// always terminates with some result (unless the checker itself faults or
/// the deadline fires even on the skim).
constexpr unsigned kDegradationStages = 3;
EngineOptions degradedOptions(const EngineOptions &Base, unsigned Stage);

/// The xgcc engine. One Engine runs one or more checkers over one source
/// base; AST annotations persist across checkers (composition).
class Engine {
public:
  Engine(ASTContext &Ctx, const SourceManager &SM, const CallGraph &CG,
         ReportManager &Reports, EngineOptions Opts = EngineOptions());
  ~Engine();
  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Applies \p C to the whole source base: a top-down DFS from every
  /// callgraph root (Section 6, step 3).
  void run(Checker &C);

  /// Prepares the engine for a fresh run of \p C (clears function summaries;
  /// a new checker invalidates them). Sharded runs call this once per
  /// worker-engine, then drive analyzeRoot per assigned root.
  void beginChecker(Checker &C);

  /// Applies \p C starting from a single root. Acts as the fault boundary:
  /// reports buffer into a scratch manager flushed only on success, and on
  /// abort the root's summary and annotation side effects are rolled back,
  /// so an aborted root leaves the engine exactly as if it had been skipped.
  RootOutcome analyzeRoot(Checker &C, const FunctionDecl *Root);

  /// Redirects reports produced from now on into \p R. Sharded runs point
  /// each worker-engine at a private per-root buffer so the merge can replay
  /// reports in the deterministic serial order.
  void setReports(ReportManager &R) { Reports = &R; }

  const EngineStats &stats() const { return Stats; }
  void resetStats() { Stats = EngineStats(); }

  const EngineOptions &options() const { return Opts; }

  /// Block summary of \p B for the last checker run (Figure 5 output).
  const BlockSummary *blockSummary(const FunctionDecl *Fn,
                                   const BasicBlock *B) const;

  /// AST annotations written by checker composition.
  const std::string *annotation(const Stmt *Node,
                                const std::string &Key) const;

  /// The full annotation store (checker composition state).
  using AnnotationMap =
      std::map<const Stmt *, std::map<std::string, std::string>>;
  const AnnotationMap &annotations() const { return Annotations; }
  /// Replaces the annotation store. Sharded runs harvest every worker's
  /// annotations at the per-checker barrier and seed the next checker's
  /// worker engines with the merged map, so composition (e.g. path_kill's
  /// PATHKILL marks) survives engine-per-worker isolation.
  void seedAnnotations(AnnotationMap A) { Annotations = std::move(A); }

  /// Internal point descriptor (public so implementation helpers can name
  /// it; not part of the stable API).
  struct PointInfo;

private:
  class ACtxImpl;
  friend class ACtxImpl;
  struct PathState;
  struct FrameCtx;
  struct RestoreInfo;

  const std::vector<PointInfo> &pointsOf(const BasicBlock *B);

  void traverseBlock(FrameCtx &Frame, const BasicBlock *B, PathState PS);
  void processPoints(FrameCtx &Frame, const BasicBlock *B,
                     const std::vector<StateTuple> &EntrySnapshot, size_t Idx,
                     PathState PS);
  void finishBlock(FrameCtx &Frame, const BasicBlock *B,
                   const std::vector<StateTuple> &EntrySnapshot, PathState PS);
  void followCall(FrameCtx &Frame, const BasicBlock *B,
                  const std::vector<StateTuple> &EntrySnapshot, size_t NextIdx,
                  PathState PS, const CallExpr *CE, const FunctionDecl *Callee);
  std::vector<PathState> analyzeFunction(const FunctionDecl *Fn, PathState PS,
                                         std::set<const FunctionDecl *> Stack,
                                         unsigned Depth);
  std::vector<SMInstance> replaySummary(const FunctionDecl *Callee,
                                        const SMInstance &Refined,
                                        bool PartialOk);

  /// Section 8 transparent analyses at an assignment-shaped point.
  void handleAssignment(PathState &PS, const Expr *LHS, const Expr *RHS,
                        const Stmt *TopStmt, bool Compound);
  void handlePoint(FrameCtx &Frame, const BasicBlock *B, PathState &PS,
                   const PointInfo &PI, bool &Matched);

  /// Table 2 refine/restore.
  PathState refine(const PathState &PS, const CallExpr *CE,
                   const FunctionDecl *Caller, const FunctionDecl *Callee,
                   RestoreInfo &RI);
  PathState restore(const PathState &CallerPS, SMInstance ExitSM,
                    const RestoreInfo &RI, const FunctionDecl *Callee);

  void endOfPath(PathState &PS, const FunctionDecl *Root);

  /// Latches the abort kind if a hard budget (deadline, root path budget)
  /// tripped; returns whether the current root is aborting. Cheap enough for
  /// the per-block hot path: two flag compares and a counter compare.
  bool rootAborted();
  /// Undoes the aborted root's side effects (touched summaries, annotation
  /// journal) so later roots behave as if it never ran.
  void rollbackRoot();

  ASTContext &Ctx;
  const SourceManager &SM;
  const CallGraph &CG;
  ReportManager *Reports;
  EngineOptions Opts;
  EngineStats Stats;

  Checker *CurChecker = nullptr;
  std::map<const FunctionDecl *, FunctionSummaries> Summaries;
  // The three lookup caches below are never iterated (single-key probes
  // only), so hashed containers are safe: no engine decision, and hence no
  // report byte, depends on their order. Annotations stays a std::map — the
  // sharded merge and composition tests iterate it in address order.
  std::unordered_map<const BasicBlock *, std::vector<PointInfo>> PointCache;
  AnnotationMap Annotations;
  /// Synthesized DeclRefExprs for formals and declared locals.
  std::unordered_map<const VarDecl *, const Expr *> DeclRefCache;
  /// Params + block-scope locals per function (scope tests for Table 2).
  std::unordered_map<const FunctionDecl *, std::unordered_set<const VarDecl *>>
      FnLocalsCache;
  const std::unordered_set<const VarDecl *> &localsOf(const FunctionDecl *Fn);
  /// Per-block dispatch memo for CurChecker: false = no point in the block
  /// can fire any of the checker's transitions, so checkPoint is skipped for
  /// the whole block on every path through it. Engine-private (per worker).
  std::unordered_map<const BasicBlock *, bool> DispatchBlockMemo;
  const Checker *MemoChecker = nullptr;
  bool blockMayFire(const BasicBlock *B);
  unsigned SynonymGroupCounter = 0;

  /// Per-root fault-containment state (reset by analyzeRoot).
  RootAbortKind AbortKind = RootAbortKind::None;
  std::string AbortReason;
  uint64_t RootPathsBase = 0;      ///< Stats.PathsExplored at root entry.
  std::atomic<bool> DeadlineExpired{false};
  bool DeadlineArmed = false;
  /// Functions whose shared summaries were touched during the current root;
  /// erased on abort (a partially-relaxed summary must not be replayed).
  std::vector<const FunctionDecl *> TouchedThisRoot;
  /// Undo log for annotation writes during the current root.
  struct AnnotUndo {
    const Stmt *Node;
    std::string Key;
    bool HadOld = false;
    std::string Old;
  };
  std::vector<AnnotUndo> AnnotJournal;
};

} // namespace mc

#endif // MC_ENGINE_ENGINE_H
