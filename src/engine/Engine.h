//===- engine/Engine.h - The xgcc analysis engine ---------------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis engine of Sections 5 and 6: a depth-first, one-execution-
/// path-at-a-time traversal of the supergraph that executes a checker at
/// every program point; block-level state caching; suffix and function
/// summaries with the relax pass; context-sensitive, top-down
/// interprocedural analysis with refine/restore at call boundaries
/// (Table 2); and the transparent supporting analyses of Section 8 (killing
/// redefined variables, synonyms, false-path pruning).
///
//===----------------------------------------------------------------------===//

#ifndef MC_ENGINE_ENGINE_H
#define MC_ENGINE_ENGINE_H

#include "cfg/CallGraph.h"
#include "engine/StateSetInterner.h"
#include "engine/Summaries.h"
#include "fpp/ValueTracker.h"
#include "metal/Checker.h"
#include "report/ReportManager.h"
#include "support/Allocator.h"
#include "support/Metrics.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace mc {

class TraceCollector;
class TraceBuffer;

/// Exit-code policy for runs with incidents (--fail-on).
enum class FailPolicy {
  Never,    ///< Always exit 0; partial results never look like crashes.
  Error,    ///< Nonzero when any root was quarantined or parsing failed.
  Degraded, ///< Error policy, plus nonzero when any root was degraded.
};

/// The CLI spelling of \p P ("never"/"error"/"degraded").
const char *failPolicyName(FailPolicy P);
/// Parses a CLI spelling; returns false (leaving \p Out untouched) on an
/// unknown value.
bool parseFailPolicy(std::string_view Spelling, FailPolicy &Out);

/// The reporting/robustness option block: everything that shapes *what the
/// run reports and how it degrades*, as opposed to the analysis semantics
/// toggles on EngineOptions itself. The CLI parses --stats, --stats-json,
/// --trace-out, --profile, --deadline-ms and --fail-on into this one
/// sub-struct; it is serialized into the run manifest as the "reporting"
/// object. A pure value (no callbacks, no streams) so EngineOptions stays
/// comparable and round-trips through the manifest.
struct ReportingOptions {
  /// Print the one-line engine counter summary after the reports (--stats).
  bool ShowStats = false;
  /// Write the run manifest JSON here; "-" = stdout, "" = off (--stats-json).
  std::string StatsJsonPath;
  /// Write a Chrome trace-event JSON file here; "" = off (--trace-out).
  std::string TraceOutPath;
  /// Print the top-N per-checker attribution report; 0 = off (--profile).
  /// Also enables checker-callout wall-clock timing, which is otherwise
  /// never measured (no clock reads on the default hot path).
  unsigned ProfileTopN = 0;
  /// Wall-clock budget per root in milliseconds, checked cooperatively at
  /// block granularity via an atomic flag; 0 = no deadline (--deadline-ms).
  /// A root that blows it walks the degradation ladder (see
  /// degradedOptions).
  uint64_t RootDeadlineMs = 0;
  /// Exit-code policy when roots were degraded/quarantined (--fail-on).
  FailPolicy FailOn = FailPolicy::Never;
  /// Render the top-N ranked reports with their witness paths after the
  /// report list; 0 = off (--explain[=N], bare --explain means 3).
  unsigned ExplainTopN = 0;
  /// Journal witness steps into per-path state and copy them into emitted
  /// reports (and the manifest's "witnesses" array). --explain turns this
  /// on; off is free — reports and --stats stay byte-identical.
  bool CaptureWitness = false;

  friend bool operator==(const ReportingOptions &,
                         const ReportingOptions &) = default;
};

/// Engine feature toggles; the benches flip these to measure each
/// mechanism's contribution.
struct EngineOptions {
  bool EnableBlockCache = true;       ///< Section 5.2 block summaries.
  bool EnableFunctionSummaries = true; ///< Section 6.2 function summaries.
  bool EnableFalsePathPruning = true; ///< Section 8 FPP.
  bool EnableAutoKill = true;         ///< Section 8 killing (AND checker knob).
  bool EnableSynonyms = true;         ///< Section 8 synonyms (AND checker knob).
  bool Interprocedural = true;        ///< Follow calls at all.
  /// Compiled pattern-dispatch index + per-block applicable-transition memo
  /// (--no-dispatch-index falls back to trying every transition everywhere).
  bool EnableDispatchIndex = true;
  /// Hash-consed state sets: block-cache subset tests, summary entryTuples
  /// lookups and exit-state dedup memoize on canonical set ids instead of
  /// walking tuple sets (--no-state-interning falls back to the per-tuple
  /// walks and string dedup keys; report bytes are identical either way).
  bool EnableStateInterning = true;
  /// Safety valves for cache-off configurations: a function analysis stops
  /// exploring after this many completed paths, and a single path aborts
  /// after this many blocks (without caching, loops never converge).
  uint64_t MaxPathsPerFunction = 1u << 20;
  unsigned MaxPathLength = 4096;
  unsigned MaxCallDepth = 64;
  /// Fault-containment valves. Unlike the truncating valves above (which
  /// quietly stop exploring and keep the partial result), these abort the
  /// whole root: its buffered reports are discarded and the driver walks the
  /// degradation ladder (see degradedOptions). RootPathBudget is a hard cap
  /// on paths explored per root across all frames (0 = unlimited).
  /// MaxActiveStates aborts when a runaway checker grows per-path state
  /// without bound. The per-root wall-clock deadline lives on
  /// Reporting.RootDeadlineMs with the rest of the robustness block.
  uint64_t RootPathBudget = 0;
  uint64_t MaxActiveStates = 1u << 16;
  /// The reporting/robustness block (--stats/--stats-json/--trace-out/
  /// --profile/--deadline-ms/--fail-on).
  ReportingOptions Reporting;
  /// Worker threads for root-function analysis and pass-1 parsing. 1 = the
  /// classic serial engine; 0 = one per hardware thread. Each worker owns a
  /// private Engine (caches, stats, report buffer); workers share only the
  /// immutable AST/CFG/call graph. See docs/INTERNALS.md "Threading model".
  unsigned Jobs = 1;

  friend bool operator==(const EngineOptions &,
                         const EngineOptions &) = default;
};

/// A typed *view* of the engine's well-known counters (see
/// MC_ENGINE_METRICS in support/Metrics.h for the field ↔ dotted-name
/// mapping). The live counters moved onto the metrics registry; this struct
/// survives as a convenient snapshot for benches and tests that read fields
/// by name. Aggregation happens on MetricsSnapshot (merge-by-name), so the
/// old hand-written merge() is gone.
struct EngineStats {
  uint64_t PointsVisited = 0;
  uint64_t BlocksVisited = 0;
  uint64_t PathsExplored = 0;
  uint64_t BlockCacheHits = 0;
  uint64_t FunctionCacheHits = 0;
  uint64_t FunctionAnalyses = 0;
  uint64_t CallsFollowed = 0;
  uint64_t PathsPruned = 0;
  uint64_t KillsApplied = 0;
  uint64_t SynonymsCreated = 0;
  uint64_t PathLimitHits = 0;
  /// Roots analyzeRoot() ran to completion or abort (each ladder retry
  /// counts — it is a fresh analysis attempt).
  uint64_t RootsAnalyzed = 0;
  /// Dispatch-index telemetry: consultations, candidates that ran full
  /// matching, transitions skipped without matching, and whole blocks whose
  /// checker dispatch was skipped via the per-block memo.
  uint64_t IndexPointLookups = 0;
  uint64_t IndexCandidatesTried = 0;
  uint64_t IndexTransitionsSkipped = 0;
  uint64_t IndexBlocksSkipped = 0;
  /// Fault-containment telemetry: hard aborts (deadline / state valve) seen
  /// by this engine, and the driver-level outcome counters (roots that ended
  /// degraded or quarantined, and how many ladder retries ran).
  uint64_t DeadlineHits = 0;
  uint64_t StateLimitHits = 0;
  uint64_t RootsDegraded = 0;
  uint64_t RootsQuarantined = 0;
  uint64_t DegradationRetries = 0;
  /// Per-root arena telemetry: cumulative bytes handed out and high-water
  /// slab counts summed over roots (recorded just before each root reset).
  uint64_t ArenaBytes = 0;
  uint64_t ArenaSlabs = 0;

  /// Builds the typed view from a snapshot's dotted names (unknown names are
  /// ignored; absent names read 0).
  static EngineStats fromMetrics(const MetricsSnapshot &M);
  /// The inverse: the well-known counters as a snapshot, for merging into
  /// tool-level totals alongside registry snapshots.
  MetricsSnapshot toMetrics() const;

  friend bool operator==(const EngineStats &, const EngineStats &) = default;
};

/// Why analyzeRoot abandoned a root. The library builds with
/// -fno-exceptions, so faults are cooperative: the engine's budget valves
/// and AnalysisContext::raiseFault set an abort latch that the traversal
/// polls at block granularity.
enum class RootAbortKind {
  None,         ///< Root completed (possibly truncated by the soft valves).
  Deadline,     ///< ReportingOptions::RootDeadlineMs elapsed.
  PathBudget,   ///< EngineOptions::RootPathBudget exceeded.
  StateLimit,   ///< EngineOptions::MaxActiveStates exceeded.
  CheckerFault, ///< The checker raised a fault via raiseFault().
};

/// Outcome of one analyzeRoot() call. On abort the root's buffered reports
/// were discarded and its summary/annotation side effects rolled back, so
/// the caller can retry with cheaper options or quarantine the root.
struct RootOutcome {
  RootAbortKind Kind = RootAbortKind::None;
  std::string Reason;
  bool aborted() const { return Kind != RootAbortKind::None; }
};

/// The degradation ladder: a root that blows a budget is retried with
/// progressively cheaper options. Stage 1 turns interprocedural analysis
/// off; stage 2 also halves the path budgets; stage 3 is an
/// intraprocedural-only skim that truncates instead of aborting, so it
/// always terminates with some result (unless the checker itself faults or
/// the deadline fires even on the skim).
constexpr unsigned kDegradationStages = 3;
EngineOptions degradedOptions(const EngineOptions &Base, unsigned Stage);

/// The xgcc engine. One Engine runs one or more checkers over one source
/// base; AST annotations persist across checkers (composition).
class Engine {
public:
  /// \p Trace may be null (tracing off) or a shared collector; the engine
  /// records one buffer per root analysis attempt on the root's lane, so the
  /// merged stream is deterministic at any --jobs count. The collector is a
  /// constructor dependency rather than an option: EngineOptions stays a
  /// pure, comparable value that round-trips through the run manifest.
  Engine(ASTContext &Ctx, const SourceManager &SM, const CallGraph &CG,
         ReportManager &Reports, EngineOptions Opts = EngineOptions(),
         TraceCollector *Trace = nullptr);
  ~Engine();
  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Applies \p C to the whole source base: a top-down DFS from every
  /// callgraph root (Section 6, step 3).
  void run(Checker &C);

  /// Prepares the engine for a fresh run of \p C (clears function summaries;
  /// a new checker invalidates them). Sharded runs call this once per
  /// worker-engine, then drive analyzeRoot per assigned root.
  void beginChecker(Checker &C);

  /// Applies \p C starting from a single root. Acts as the fault boundary:
  /// reports buffer into a scratch manager flushed only on success, and on
  /// abort the root's summary and annotation side effects are rolled back,
  /// so an aborted root leaves the engine exactly as if it had been skipped.
  RootOutcome analyzeRoot(Checker &C, const FunctionDecl *Root);

  /// Redirects reports produced from now on into \p R. Sharded runs point
  /// each worker-engine at a private per-root buffer so the merge can replay
  /// reports in the deterministic serial order.
  void setReports(ReportManager &R) { Reports = &R; }

  /// Typed snapshot of the engine's well-known counters (by value — the
  /// live counters are registry cells now).
  EngineStats stats() const;
  /// The engine's live metrics registry: the well-known counters plus
  /// per-checker attribution and any checker-registered custom counters.
  /// Snapshot it (metrics().snapshot()) to aggregate across engines.
  const MetricsRegistry &metrics() const { return Metrics; }
  void resetStats() { Metrics.reset(); }

  const EngineOptions &options() const { return Opts; }

  /// Block summary of \p B for the last checker run (Figure 5 output).
  const BlockSummary *blockSummary(const FunctionDecl *Fn,
                                   const BasicBlock *B) const;

  /// The full summary store of \p Fn for the last checker run, or null when
  /// the function was never descended into. The incremental cache's
  /// --cache-verify pass digests these (engine/Summaries.h text form) to
  /// cross-check warm replays against a fresh analysis; rollbackRoot()
  /// erases the store of every function the aborted root touched, so a
  /// ladder-degraded root can never leak partial summaries into a digest.
  FunctionSummaries *functionSummary(const FunctionDecl *Fn) {
    auto It = Summaries.find(Fn);
    return It == Summaries.end() ? nullptr : &It->second;
  }

  /// AST annotations written by checker composition.
  const std::string *annotation(const Stmt *Node,
                                const std::string &Key) const;

  /// The full annotation store (checker composition state).
  using AnnotationMap =
      std::map<const Stmt *, std::map<std::string, std::string>>;
  const AnnotationMap &annotations() const { return Annotations; }
  /// Replaces the annotation store. Sharded runs harvest every worker's
  /// annotations at the per-checker barrier and seed the next checker's
  /// worker engines with the merged map, so composition (e.g. path_kill's
  /// PATHKILL marks) survives engine-per-worker isolation.
  void seedAnnotations(AnnotationMap A) { Annotations = std::move(A); }

  /// Internal point descriptor (public so implementation helpers can name
  /// it; not part of the stable API).
  struct PointInfo;

private:
  class ACtxImpl;
  friend class ACtxImpl;
  struct PathState;
  struct FrameCtx;
  struct RestoreInfo;

  const std::vector<PointInfo> &pointsOf(const BasicBlock *B);

  void traverseBlock(FrameCtx &Frame, const BasicBlock *B, PathState PS);
  void processPoints(FrameCtx &Frame, const BasicBlock *B,
                     TupleSpan EntrySnapshot, size_t Idx,
                     PathState PS);
  void finishBlock(FrameCtx &Frame, const BasicBlock *B,
                   TupleSpan EntrySnapshot, PathState PS);
  void followCall(FrameCtx &Frame, const BasicBlock *B,
                  TupleSpan EntrySnapshot, size_t NextIdx,
                  PathState PS, const CallExpr *CE, const FunctionDecl *Callee);
  std::vector<PathState> analyzeFunction(const FunctionDecl *Fn, PathState PS,
                                         std::set<const FunctionDecl *> Stack,
                                         unsigned Depth);
  std::vector<SMInstance> replaySummary(const FunctionDecl *Callee,
                                        const SMInstance &Refined,
                                        bool PartialOk);

  /// Section 8 transparent analyses at an assignment-shaped point. \p Depth
  /// tags witness rebind steps with the call-chain level.
  void handleAssignment(PathState &PS, const Expr *LHS, const Expr *RHS,
                        const Stmt *TopStmt, bool Compound, unsigned Depth);
  void handlePoint(FrameCtx &Frame, const BasicBlock *B, PathState &PS,
                   const PointInfo &PI, bool &Matched);

  /// Table 2 refine/restore.
  PathState refine(const PathState &PS, const CallExpr *CE,
                   const FunctionDecl *Caller, const FunctionDecl *Callee,
                   RestoreInfo &RI);
  PathState restore(const PathState &CallerPS, SMInstance ExitSM,
                    const RestoreInfo &RI, const FunctionDecl *Callee);

  void endOfPath(PathState &PS, const FunctionDecl *Root);

  /// Latches the abort kind if a hard budget (deadline, root path budget)
  /// tripped; returns whether the current root is aborting. Cheap enough for
  /// the per-block hot path: two flag compares and a counter compare.
  bool rootAborted();
  /// Undoes the aborted root's side effects (touched summaries, annotation
  /// journal) so later roots behave as if it never ran.
  void rollbackRoot();

  ASTContext &Ctx;
  const SourceManager &SM;
  const CallGraph &CG;
  ReportManager *Reports;
  EngineOptions Opts;

  /// The live counter store. Engine-private on the hot path; increments go
  /// through cached cell pointers (one relaxed fetch_add each).
  MetricsRegistry Metrics;
  /// Cached cells for the well-known counters, one field per
  /// MC_ENGINE_METRICS row (registered once in the constructor).
  struct Counters {
#define MC_METRIC_FIELD(Field, DottedName, StatsKey, BenchKey)                 \
  std::atomic<uint64_t> *Field = nullptr;
    MC_ENGINE_METRICS(MC_METRIC_FIELD)
#undef MC_METRIC_FIELD
  };
  Counters Ctr;
  static void bump(std::atomic<uint64_t> *Cell, uint64_t Delta = 1) {
    Cell->fetch_add(Delta, std::memory_order_relaxed);
  }
  /// Cached per-checker attribution cells (checker.<name>.*), refreshed
  /// whenever the running checker changes.
  struct CheckerCells {
    std::atomic<uint64_t> *Tried = nullptr;
    std::atomic<uint64_t> *Fired = nullptr;
    std::atomic<uint64_t> *States = nullptr;
    std::atomic<uint64_t> *Faults = nullptr;
    std::atomic<uint64_t> *Reports = nullptr;
    std::atomic<uint64_t> *CalloutNs = nullptr;
    /// Witness steps copied into emitted reports; registered only when
    /// capture is on so a capture-off metrics snapshot is unchanged.
    std::atomic<uint64_t> *WitnessSteps = nullptr;
  };
  CheckerCells CkC;
  const Checker *CellsChecker = nullptr;
  void refreshCheckerCells(const Checker &Ck);
  /// Time checker callouts only when a profile was requested — no clock
  /// reads on the default hot path.
  bool ProfileTiming = false;
  /// Witness journaling gate (ReportingOptions::CaptureWitness, cached):
  /// every capture site tests this one bool, so the disabled path costs a
  /// predictable branch and nothing else.
  bool WitnessOn = false;

  /// Optional span collector (null = tracing off; spans become no-ops).
  TraceCollector *Trace = nullptr;
  /// Root → lane for deterministic trace merging (lane 0 is the tool; root
  /// N in call-graph root order gets lane 1+N). Built lazily on first use.
  /// Hashed: probed by key only, lanes come from call-graph root order.
  std::unordered_map<const FunctionDecl *, uint64_t> RootLanes;
  uint64_t laneOf(const FunctionDecl *Root);

  Checker *CurChecker = nullptr;
  /// Hashed: probed/erased by key only (analyzeFunction, replay, rollback);
  /// iteration never happens, so order cannot reach report bytes.
  std::unordered_map<const FunctionDecl *, FunctionSummaries> Summaries;
  /// Hash-consed tuple-set ids for the summary memos (worker-private, like
  /// Summaries; cleared together in beginChecker).
  StateSetInterner SetIntern;
  /// Per-root bump arena for traversal transients (entry-tuple snapshots,
  /// backtrace spans). Frames take mark/rewind scopes so growth is bounded
  /// by the live DFS path; analyzeRoot records the telemetry and resets it
  /// wholesale at root end — aborted roots leak nothing by construction.
  BumpPtrAllocator RootArena;
  // The lookup caches below are never iterated (single-key probes
  // only), so hashed containers are safe: no engine decision, and hence no
  // report byte, depends on their order. Annotations stays a std::map — the
  // sharded merge and composition tests iterate it in address order.
  std::unordered_map<const BasicBlock *, std::vector<PointInfo>> PointCache;
  AnnotationMap Annotations;
  /// Synthesized DeclRefExprs for formals and declared locals.
  std::unordered_map<const VarDecl *, const Expr *> DeclRefCache;
  /// Printed text of branch conditions, memoized per Expr: the always-on
  /// shape trail mixes condition text at every live branch, and re-printing
  /// the tree each time would put an allocation on the hot path.
  std::unordered_map<const Expr *, std::string> CondTextCache;
  const std::string &condText(const Expr *E);
  /// Params + block-scope locals per function (scope tests for Table 2).
  std::unordered_map<const FunctionDecl *, std::unordered_set<const VarDecl *>>
      FnLocalsCache;
  const std::unordered_set<const VarDecl *> &localsOf(const FunctionDecl *Fn);
  /// Per-block dispatch memo for CurChecker: false = no point in the block
  /// can fire any of the checker's transitions, so checkPoint is skipped for
  /// the whole block on every path through it. Engine-private (per worker).
  std::unordered_map<const BasicBlock *, bool> DispatchBlockMemo;
  const Checker *MemoChecker = nullptr;
  bool blockMayFire(const BasicBlock *B);
  unsigned SynonymGroupCounter = 0;

  /// Per-root fault-containment state (reset by analyzeRoot).
  RootAbortKind AbortKind = RootAbortKind::None;
  std::string AbortReason;
  uint64_t RootPathsBase = 0;      ///< paths-explored counter at root entry.
  std::atomic<bool> DeadlineExpired{false};
  bool DeadlineArmed = false;
  /// Functions whose shared summaries were touched during the current root;
  /// erased on abort (a partially-relaxed summary must not be replayed).
  std::vector<const FunctionDecl *> TouchedThisRoot;
  /// Undo log for annotation writes during the current root.
  struct AnnotUndo {
    const Stmt *Node;
    std::string Key;
    bool HadOld = false;
    std::string Old;
  };
  std::vector<AnnotUndo> AnnotJournal;
};

} // namespace mc

#endif // MC_ENGINE_ENGINE_H
