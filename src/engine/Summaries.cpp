//===- engine/Summaries.cpp - Block/suffix/function summaries ----------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Summaries.h"

#include "support/Hash.h"

#include <algorithm>

using namespace mc;

void mc::relaxSuffixSummaries(const std::vector<BacktraceEntry> &Backtrace,
                              FunctionSummaries &FS,
                              const std::function<bool(uint32_t)> &KeepTree) {
  if (Backtrace.size() < 2)
    return;
  for (size_t I = Backtrace.size() - 1; I-- > 0;) {
    BlockSummary &Prev = FS.of(Backtrace[I].Block);
    const BlockSummary &Next = FS.of(Backtrace[I + 1].Block);
    bool Grew = false;
    for (const SummaryEdge &E : Next.SuffixEdges) {
      // Suffix summaries intentionally omit edges that end in stop, and
      // never record local variables (Figure 5).
      if (E.To.Value == StateStop && !E.To.isPlaceholder())
        continue;
      if (!E.To.isPlaceholder() && !KeepTree(E.To.TreeKey))
        continue;
      if (E.isAdd()) {
        // An add edge's start "matches" any global-only edge of the previous
        // block whose end has the same global value (Section 6.2).
        for (const SummaryEdge &P : Prev.Edges) {
          if (!P.isGlobalOnly() || P.To.GState != E.From.GState)
            continue;
          SummaryEdge NewE{
              StateTuple{P.From.GState, E.From.TreeKey, StateUnknown, {}},
              E.To, E.ToTree, E.FactKey};
          if (Prev.SuffixEdges.insert(NewE).second) {
            if (NewE.ToTree)
              Prev.Trees[NewE.To.TreeKey] = NewE.ToTree;
            Grew = true;
          }
        }
        continue;
      }
      // A transition suffix edge chains with any block edge (transition or
      // add) whose end tuple equals its start tuple.
      for (const SummaryEdge &P : Prev.Edges) {
        if (P.To != E.From)
          continue;
        // When P is an add edge the composition is still an add edge and the
        // creation fact travels with it; transition edges carry no fact.
        SummaryEdge NewE{P.From, E.To, E.ToTree, P.FactKey};
        if (!NewE.From.isPlaceholder() && !KeepTree(NewE.From.TreeKey) &&
            !NewE.isAdd())
          continue;
        if (Prev.SuffixEdges.insert(NewE).second) {
          if (NewE.ToTree)
            Prev.Trees[NewE.To.TreeKey] = NewE.ToTree;
          Grew = true;
        }
      }
    }
    // "The algorithm stops when ... no new edges are propagated."
    if (!Grew)
      break;
  }
}

//===----------------------------------------------------------------------===//
// Canonical text serialization (incremental cache cross-checks)
//===----------------------------------------------------------------------===//

namespace {

// Symbols may contain any byte; the record format is line- and
// tab-delimited, so those two and the escape itself get escaped.
void escapeTo(std::string_view S, std::string &Out) {
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out.push_back(C);
    }
  }
}

bool unescape(std::string_view S, std::string &Out) {
  Out.clear();
  for (size_t I = 0; I != S.size(); ++I) {
    if (S[I] != '\\') {
      Out.push_back(S[I]);
      continue;
    }
    if (++I == S.size())
      return false;
    switch (S[I]) {
    case '\\':
      Out.push_back('\\');
      break;
    case 't':
      Out.push_back('\t');
      break;
    case 'n':
      Out.push_back('\n');
      break;
    default:
      return false;
    }
  }
  return true;
}

void tupleTo(const StateTuple &T, std::string &Out) {
  Out += std::to_string(T.GState);
  Out.push_back('\t');
  escapeTo(symbolText(T.TreeKey), Out);
  Out.push_back('\t');
  Out += std::to_string(T.Value);
  Out.push_back('\t');
  escapeTo(symbolText(T.Data), Out);
}

/// Splits one record line at unescaped tabs.
std::vector<std::string_view> splitFields(std::string_view Line) {
  std::vector<std::string_view> Fields;
  size_t Start = 0;
  bool Esc = false;
  for (size_t I = 0; I != Line.size(); ++I) {
    if (Esc) {
      Esc = false;
      continue;
    }
    if (Line[I] == '\\')
      Esc = true;
    else if (Line[I] == '\t') {
      Fields.push_back(Line.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  Fields.push_back(Line.substr(Start));
  return Fields;
}

bool parseInt(std::string_view S, int &Out) {
  if (S.empty())
    return false;
  bool Neg = S[0] == '-';
  size_t I = Neg ? 1 : 0;
  if (I == S.size())
    return false;
  long long V = 0;
  for (; I != S.size(); ++I) {
    if (S[I] < '0' || S[I] > '9')
      return false;
    V = V * 10 + (S[I] - '0');
    if (V > 1ll << 40)
      return false;
  }
  Out = int(Neg ? -V : V);
  return true;
}

/// Reads the four tuple fields starting at \p Fields[At].
bool parseTuple(const std::vector<std::string_view> &Fields, size_t At,
                StateTuple &Out) {
  if (At + 4 > Fields.size())
    return false;
  std::string Text;
  if (!parseInt(Fields[At], Out.GState))
    return false;
  if (!unescape(Fields[At + 1], Text))
    return false;
  Out.TreeKey = symbolize(Text);
  if (!parseInt(Fields[At + 2], Out.Value))
    return false;
  if (!unescape(Fields[At + 3], Text))
    return false;
  Out.Data = symbolize(Text);
  return true;
}

} // namespace

std::string mc::serializeFunctionSummary(FunctionSummaries &FS, const CFG &G) {
  std::string Out = "mc-summary-v1\n";
  std::vector<StateTuple> Entry(FS.entryTuples(G).begin(),
                                FS.entryTuples(G).end());
  std::sort(Entry.begin(), Entry.end());
  for (const StateTuple &T : Entry) {
    Out += "entry\t";
    tupleTo(T, Out);
    Out.push_back('\n');
  }
  for (const SummaryEdge &E : FS.functionEdges(G)) {
    Out += "edge\t";
    tupleTo(E.From, Out);
    Out.push_back('\t');
    tupleTo(E.To, Out);
    Out.push_back('\t');
    escapeTo(symbolText(E.FactKey), Out);
    Out.push_back('\n');
  }
  return Out;
}

bool mc::parseFunctionSummary(std::string_view Text, FunctionSummaries &FS,
                              const CFG &G, std::string *Err) {
  auto Fail = [&](const char *Why) {
    if (Err)
      *Err = Why;
    return false;
  };
  size_t Nl = Text.find('\n');
  if (Nl == std::string_view::npos || Text.substr(0, Nl) != "mc-summary-v1")
    return Fail("bad summary header");
  Text.remove_prefix(Nl + 1);
  BlockSummary &Entry = FS.of(G.entry());
  while (!Text.empty()) {
    Nl = Text.find('\n');
    if (Nl == std::string_view::npos)
      return Fail("unterminated summary record");
    std::string_view Line = Text.substr(0, Nl);
    Text.remove_prefix(Nl + 1);
    std::vector<std::string_view> Fields = splitFields(Line);
    if (Fields.empty())
      return Fail("empty summary record");
    if (Fields[0] == "entry") {
      StateTuple T;
      if (Fields.size() != 5 || !parseTuple(Fields, 1, T))
        return Fail("malformed entry tuple");
      Entry.Reached.insert(T);
    } else if (Fields[0] == "edge") {
      SummaryEdge E;
      std::string Fact;
      if (Fields.size() != 10 || !parseTuple(Fields, 1, E.From) ||
          !parseTuple(Fields, 5, E.To) || !unescape(Fields[9], Fact))
        return Fail("malformed suffix edge");
      E.FactKey = symbolize(Fact);
      Entry.SuffixEdges.insert(E);
    } else {
      return Fail("unknown summary record");
    }
  }
  return true;
}

uint64_t mc::functionSummaryDigest(FunctionSummaries &FS, const CFG &G) {
  return fnv1a64(serializeFunctionSummary(FS, G));
}
