//===- engine/Summaries.cpp - Block/suffix/function summaries ----------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Summaries.h"

using namespace mc;

void mc::relaxSuffixSummaries(const std::vector<BacktraceEntry> &Backtrace,
                              FunctionSummaries &FS,
                              const std::function<bool(uint32_t)> &KeepTree) {
  if (Backtrace.size() < 2)
    return;
  for (size_t I = Backtrace.size() - 1; I-- > 0;) {
    BlockSummary &Prev = FS.of(Backtrace[I].Block);
    const BlockSummary &Next = FS.of(Backtrace[I + 1].Block);
    bool Grew = false;
    for (const SummaryEdge &E : Next.SuffixEdges) {
      // Suffix summaries intentionally omit edges that end in stop, and
      // never record local variables (Figure 5).
      if (E.To.Value == StateStop && !E.To.isPlaceholder())
        continue;
      if (!E.To.isPlaceholder() && !KeepTree(E.To.TreeKey))
        continue;
      if (E.isAdd()) {
        // An add edge's start "matches" any global-only edge of the previous
        // block whose end has the same global value (Section 6.2).
        for (const SummaryEdge &P : Prev.Edges) {
          if (!P.isGlobalOnly() || P.To.GState != E.From.GState)
            continue;
          SummaryEdge NewE{
              StateTuple{P.From.GState, E.From.TreeKey, StateUnknown, {}},
              E.To, E.ToTree, E.FactKey};
          if (Prev.SuffixEdges.insert(NewE).second) {
            if (NewE.ToTree)
              Prev.Trees[NewE.To.TreeKey] = NewE.ToTree;
            Grew = true;
          }
        }
        continue;
      }
      // A transition suffix edge chains with any block edge (transition or
      // add) whose end tuple equals its start tuple.
      for (const SummaryEdge &P : Prev.Edges) {
        if (P.To != E.From)
          continue;
        // When P is an add edge the composition is still an add edge and the
        // creation fact travels with it; transition edges carry no fact.
        SummaryEdge NewE{P.From, E.To, E.ToTree, P.FactKey};
        if (!NewE.From.isPlaceholder() && !KeepTree(NewE.From.TreeKey) &&
            !NewE.isAdd())
          continue;
        if (Prev.SuffixEdges.insert(NewE).second) {
          if (NewE.ToTree)
            Prev.Trees[NewE.To.TreeKey] = NewE.ToTree;
          Grew = true;
        }
      }
    }
    // "The algorithm stops when ... no new edges are propagated."
    if (!Grew)
      break;
  }
}
