//===- engine/Summaries.h - Block/suffix/function summaries -----*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic-programming caches of Sections 5.2 and 6.2. Each basic block
/// accumulates a *block summary*: the set of state tuples that reached it
/// (the cache consulted by cache_misses) plus the transition and add edges
/// describing how the block transforms each tuple. The backwards `relax`
/// pass chains block summaries into *suffix summaries* (edges from a block
/// to the function exit); the entry block's suffix summary is the function
/// summary replayed at interprocedural cache hits.
///
/// Container discipline: `Reached` is membership-only, so it hashes;
/// `Edges`/`SuffixEdges` stay ordered because their iteration order (tuple
/// text order) reaches report bytes through replay and relax. The consed-id
/// memos (`HitSets`, `EntryHitSets`) cache positive answers to "is every
/// tuple of this set already in Reached?" — sound because Reached only
/// grows within a checker run and a root abort discards whole
/// FunctionSummaries, memos included.
///
//===----------------------------------------------------------------------===//

#ifndef MC_ENGINE_SUMMARIES_H
#define MC_ENGINE_SUMMARIES_H

#include "cfg/CFG.h"
#include "metal/State.h"

#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mc {

/// A transition or add edge. Add edges have From.Value == StateUnknown:
/// "the edge only applies when we know nothing about t at the entry"
/// (Section 5.2).
struct SummaryEdge {
  StateTuple From;
  StateTuple To;
  /// The tree of the To tuple, needed to materialize instances at replay.
  const Expr *ToTree = nullptr;
  /// For add edges: the analysis fact that started tracking inside the
  /// callee (VarState::FactKey), so a replayed instance groups and renders
  /// exactly like its inline-analyzed twin. Metadata, like ToTree: not part
  /// of edge identity.
  uint32_t FactKey = 0;

  bool isAdd() const { return From.Value == StateUnknown; }
  /// Global-only edges relate placeholder tuples; relax uses them to match
  /// the initial state of add edges.
  bool isGlobalOnly() const { return From.isPlaceholder(); }

  bool operator<(const SummaryEdge &RHS) const {
    if (From != RHS.From)
      return From < RHS.From;
    return To < RHS.To;
  }
  bool operator==(const SummaryEdge &RHS) const {
    return From == RHS.From && To == RHS.To;
  }
};

/// Per-block cache + effect edges + suffix edges.
struct BlockSummary {
  /// Tuples that have reached this block (the cache_misses cache).
  /// Membership tests only — hashed, not ordered.
  std::unordered_set<StateTuple, StateTupleHash> Reached;
  /// How the block transforms each entering tuple (includes identity and
  /// the global-only edge). Ordered: iteration reaches report bytes.
  std::set<SummaryEdge> Edges;
  /// Edges from this block's entry to the function exit. Ordered likewise.
  std::set<SummaryEdge> SuffixEdges;

  /// ToTree lookup for replay (keyed by tree-key symbol). Write-mostly.
  std::unordered_map<uint32_t, const Expr *> Trees;

  /// Consed set ids known to be fully contained in Reached (the block-cache
  /// full-hit memo): one integer probe replaces the per-tuple subset walk.
  std::unordered_set<uint32_t> HitSets;

  void addEdge(const SummaryEdge &E) {
    Edges.insert(E);
    if (E.ToTree)
      Trees[E.To.TreeKey] = E.ToTree;
  }
  void addSuffixEdge(const SummaryEdge &E) {
    SuffixEdges.insert(E);
    if (E.ToTree)
      Trees[E.To.TreeKey] = E.ToTree;
  }
};

/// Summary store for one (checker, function) pair.
class FunctionSummaries {
public:
  BlockSummary &of(const BasicBlock *B) { return Blocks[B]; }
  const BlockSummary *find(const BasicBlock *B) const {
    auto It = Blocks.find(B);
    return It == Blocks.end() ? nullptr : &It->second;
  }

  /// The entry block's Reached set records every tuple that entered the
  /// function; the interprocedural cache hit test checks against it.
  const std::unordered_set<StateTuple, StateTupleHash> &entryTuples(
      const CFG &G) {
    return of(G.entry()).Reached;
  }
  /// The function summary: the entry block's suffix edges.
  const std::set<SummaryEdge> &functionEdges(const CFG &G) {
    return of(G.entry()).SuffixEdges;
  }
  const BlockSummary &entrySummary(const CFG &G) { return of(G.entry()); }

  /// Records whether a tree key denotes a function-local object (local keys
  /// never enter suffix/function summaries — Figure 5's note about q).
  /// Probe-only: hashed.
  std::unordered_map<uint32_t, bool> LocalKeys;

  /// Consed set ids known to be contained in the entry block's Reached set
  /// (the interprocedural cache-hit memo).
  std::unordered_set<uint32_t> EntryHitSets;

private:
  std::unordered_map<const BasicBlock *, BlockSummary> Blocks;
};

/// One backtrace element: a block and the tuples the current path carried
/// into it. The tuples are an arena span owned by the traversal frame that
/// pushed the entry (they outlive the entry — backtraces pop before their
/// frame returns), so pushing a backtrace entry never heap-allocates.
struct BacktraceEntry {
  const BasicBlock *Block;
  TupleSpan Entry;
};

/// The relax pass of Figure 6: walks the backtrace backwards, combining
/// each block's summary edges with the suffix edges of the subsequent
/// block. Suffix edges ending in stop are omitted, as are edges whose tree
/// fails \p KeepTree (local variables never escape — Figure 5's note on q).
void relaxSuffixSummaries(const std::vector<BacktraceEntry> &Backtrace,
                          FunctionSummaries &FS,
                          const std::function<bool(uint32_t)> &KeepTree);

/// Canonical text rendering of the interprocedural content of \p FS for the
/// function with CFG \p G: the entry block's Reached set (sorted by tuple
/// text order) and its suffix edges (the function summary, already
/// text-ordered). Every symbol is rendered as its *text*, never its id, so
/// the output is byte-identical across interning schedules and across the
/// `--no-state-interning` toggle — the incremental cache's `--cache-verify`
/// cross-check and the summary digests depend on that.
///
/// ToTree pointers and the consed-id memos are deliberately absent: trees
/// cannot be rematerialized outside their AST and the memos are
/// rediscoverable. parseFunctionSummary therefore restores a summary good
/// for digesting and equality checks, not for replay.
std::string serializeFunctionSummary(FunctionSummaries &FS, const CFG &G);

/// Parses a serializeFunctionSummary rendering back into \p FS (entry
/// Reached set + suffix edges of \p G's entry block, ToTree left null).
/// Returns false on malformed input; \p Err receives a reason.
bool parseFunctionSummary(std::string_view Text, FunctionSummaries &FS,
                          const CFG &G, std::string *Err);

/// FNV-1a digest of serializeFunctionSummary — the summary-store
/// cross-check fingerprint.
uint64_t functionSummaryDigest(FunctionSummaries &FS, const CFG &G);

} // namespace mc

#endif // MC_ENGINE_SUMMARIES_H
