//===- report/History.cpp - Cross-version suppression ------------------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "report/History.h"

#include <cstdio>

using namespace mc;

bool HistoryFile::load(const std::string &Path) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::string Contents;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Contents.append(Buf, N);
  std::fclose(F);
  size_t Start = 0;
  while (Start < Contents.size()) {
    size_t End = Contents.find('\n', Start);
    if (End == std::string::npos)
      End = Contents.size();
    if (End > Start)
      Keys.insert(Contents.substr(Start, End - Start));
    Start = End + 1;
  }
  return true;
}

bool HistoryFile::save(const std::string &Path) const {
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  for (const std::string &Key : Keys) {
    std::fwrite(Key.data(), 1, Key.size(), F);
    std::fputc('\n', F);
  }
  std::fclose(F);
  return true;
}
