//===- report/ReportManager.h - Collection and ranking ----------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects error reports and statistical counters and produces ranked
/// output (Section 9): severity stratification, the generic criteria
/// (distance, #conditionals, indirection, local-vs-interprocedural),
/// annotation classes, grouping by common analysis fact, and z-statistic
/// ranking of rules for both deviant-behaviour inference and false-positive
/// demotion.
///
//===----------------------------------------------------------------------===//

#ifndef MC_REPORT_REPORTMANAGER_H
#define MC_REPORT_REPORTMANAGER_H

#include "report/ErrorReport.h"

#include <map>
#include <set>
#include <string_view>
#include <vector>

namespace mc {

class raw_ostream;

/// Counters for one statistical rule.
struct RuleStats {
  unsigned Examples = 0;       ///< e: times the rule was followed.
  unsigned Counterexamples = 0; ///< c: times it was violated.

  unsigned total() const { return Examples + Counterexamples; }
};

/// The z-statistic for proportions with null hypothesis p0:
/// z(n, e) = (e/n - p0) / sqrt(p0 (1 - p0) / n).
/// The paper uses p0 = 0.5 ("a rule is obeyed or violated at random").
double zStatistic(unsigned N, unsigned E, double P0 = 0.5);

/// Ranking policies for ranked().
enum class RankPolicy {
  Generic,     ///< Severity class, locality, then distance score.
  Statistical, ///< Severity class, then descending rule z-statistic.
  Combined,    ///< Statistical tie-broken by the generic criteria.
};

/// One root x checker that fault containment degraded or quarantined.
/// Incidents ride with the report stream so partial results are explicit:
/// print() appends an "analysis incomplete" trailer when any exist.
struct RootIncident {
  std::string Root;        ///< Root function name.
  std::string Checker;     ///< Checker that was running.
  bool Quarantined = false; ///< false = degraded (a cheaper stage succeeded).
  bool Fault = false;      ///< Quarantine cause was a checker fault (a bug in
                           ///< the checker), not an exhausted cost budget. The
                           ///< service's cross-request quarantine keys on this.
  unsigned Stage = 0;      ///< Ladder stage that produced the result (1-3).
  std::string Reason;      ///< First abort reason (deadline, fault, ...).

  friend bool operator==(const RootIncident &, const RootIncident &) = default;
};

/// Collects and ranks reports.
class ReportManager {
public:
  /// Adds \p R, deduplicating identical (checker, location, message,
  /// witness-terminal) tuples and keeping the report with the smaller
  /// distance score. The witness key keeps reports about different objects
  /// at one textual site (macro expansions) distinct.
  void add(ErrorReport R);

  void countExample(const std::string &RuleKey) { ++Rules[RuleKey].Examples; }
  void countViolation(const std::string &RuleKey) {
    ++Rules[RuleKey].Counterexamples;
  }

  const std::vector<ErrorReport> &reports() const { return Reports; }
  size_t size() const { return Reports.size(); }
  void clear();

  /// Folds \p O into this manager: replays every report through add() (so
  /// dedup picks the same winners a serial run would have) and sums the rule
  /// counters. Sharded runs merge per-worker buffers in root order, which
  /// reproduces the serial add() sequence exactly.
  void merge(const ReportManager &O);

  /// Rebuilds a buffer from deserialized state (the summary store's per-root
  /// replay artifacts). The restored buffer is merged like a live per-root
  /// buffer, so the add() replay semantics still decide dedup winners.
  void restore(std::vector<ErrorReport> R,
               std::map<std::string, RuleStats> Ru) {
    Reports = std::move(R);
    Rules = std::move(Ru);
    Incidents.clear();
  }

  /// Records a fault-containment incident. The driver notes incidents in
  /// serial root order at any job count, so the trailer is deterministic.
  void noteIncident(RootIncident I) { Incidents.push_back(std::move(I)); }
  const std::vector<RootIncident> &incidents() const { return Incidents; }
  bool anyQuarantined() const;
  bool anyDegraded() const;

  const std::map<std::string, RuleStats> &rules() const { return Rules; }
  /// z-statistic of \p RuleKey (0 when the rule has no events).
  double ruleZ(const std::string &RuleKey) const;

  /// Returns indices into reports() in rank order under \p Policy.
  std::vector<size_t> ranked(RankPolicy Policy) const;

  /// Groups report indices by GroupKey (Section 9: "group all errors that
  /// are computed from a common analysis fact").
  std::map<std::string, std::vector<size_t>> grouped() const;

  /// Drops every report whose history key is in \p Suppressed (cross-version
  /// false-positive suppression, Section 8). Returns how many were dropped.
  unsigned suppress(const std::set<std::string> &Suppressed);

  /// Drops every report whose stable fingerprint is in \p Suppressed (the
  /// baseline store's `--suppress-known` path and triage-marked
  /// suppressions). Returns how many were dropped.
  unsigned suppressFingerprints(const std::set<uint64_t> &Suppressed);

  /// Attaches lifecycle classes from a baseline diff: fingerprint -> "new" /
  /// "known". print() annotates tagged reports and printJson() emits a
  /// "lifecycle" field; untagged reports render exactly as before, so output
  /// without a baseline is byte-identical to prior releases.
  void setLifecycle(std::map<uint64_t, std::string> Tags) {
    Lifecycle = std::move(Tags);
  }
  const std::map<uint64_t, std::string> &lifecycle() const {
    return Lifecycle;
  }

  /// Installs the accumulated cross-run population for statistical ranking:
  /// ruleZ() adds these counts to the current run's, so z-statistics sharpen
  /// as the baseline store accumulates checks and violations over many runs
  /// (docs/REPORTS.md). Current-run counters via rules() are unaffected.
  void setRulePrior(std::map<std::string, RuleStats> Prior) {
    RulePrior = std::move(Prior);
  }

  /// Pretty-prints the ranked reports, followed by the "analysis incomplete"
  /// trailer when any root was degraded or quarantined (output stays
  /// byte-identical to a fault-free run when there are no incidents).
  void print(raw_ostream &OS, RankPolicy Policy) const;

  /// Emits the ranked reports as a JSON array (machine-readable output for
  /// downstream tooling), followed by an {"analysis_incomplete": ...} object
  /// on its own line when any incidents exist.
  void printJson(raw_ostream &OS, RankPolicy Policy) const;

private:
  std::vector<ErrorReport> Reports;
  std::map<std::string, RuleStats> Rules;
  std::vector<RootIncident> Incidents;
  std::map<uint64_t, std::string> Lifecycle;
  std::map<std::string, RuleStats> RulePrior;
};

/// The history key of a report: fields that are "relatively invariant under
/// edits" — file, function, variable names, and the message (Section 8).
std::string historyKey(const ErrorReport &R);

/// Writes \p S as a JSON string literal (quoted, escaped). Shared by every
/// JSON surface — reports, the incident trailer, the run manifest — so they
/// all escape identically.
void writeJsonString(raw_ostream &OS, std::string_view S);

/// Renders \p Incidents as the JSON array (just the `[...]`) used both by
/// printJson's {"analysis_incomplete": ...} trailer and by the run
/// manifest's "incidents" field — one serializer, two views.
void renderIncidentsJson(raw_ostream &OS,
                         const std::vector<RootIncident> &Incidents);

/// Renders \p Incidents as print()'s human-readable "analysis incomplete"
/// trailer. No-op when the list is empty.
void renderIncidentsText(raw_ostream &OS,
                         const std::vector<RootIncident> &Incidents);

} // namespace mc

#endif // MC_REPORT_REPORTMANAGER_H
