//===- report/ReportManager.cpp - Collection and ranking ---------------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "report/ReportManager.h"

#include "support/Hash.h"
#include "support/RawOstream.h"

#include <algorithm>
#include <cmath>

using namespace mc;

double mc::zStatistic(unsigned N, unsigned E, double P0) {
  if (N == 0)
    return 0.0;
  double P = double(E) / double(N);
  return (P - P0) / std::sqrt(P0 * (1.0 - P0) / double(N));
}

void ReportManager::add(ErrorReport R) {
  for (ErrorReport &Existing : Reports) {
    if (Existing.CheckerName == R.CheckerName &&
        Existing.ErrorLoc == R.ErrorLoc && Existing.Message == R.Message &&
        Existing.WitnessKey == R.WitnessKey) {
      // Same error rediscovered along another path; keep the easier-to-
      // inspect variant (smaller distance score, fewer synonyms).
      if (R.distanceScore() < Existing.distanceScore() ||
          (R.distanceScore() == Existing.distanceScore() &&
           R.IndirectionDepth < Existing.IndirectionDepth))
        Existing = std::move(R);
      return;
    }
  }
  Reports.push_back(std::move(R));
}

void ReportManager::clear() {
  Reports.clear();
  Rules.clear();
  Incidents.clear();
  Lifecycle.clear();
  RulePrior.clear();
}

void ReportManager::merge(const ReportManager &O) {
  for (const ErrorReport &R : O.Reports)
    add(R);
  for (const auto &[Key, RS] : O.Rules) {
    RuleStats &Dst = Rules[Key];
    Dst.Examples += RS.Examples;
    Dst.Counterexamples += RS.Counterexamples;
  }
  for (const RootIncident &I : O.Incidents)
    Incidents.push_back(I);
}

bool ReportManager::anyQuarantined() const {
  return std::any_of(Incidents.begin(), Incidents.end(),
                     [](const RootIncident &I) { return I.Quarantined; });
}

bool ReportManager::anyDegraded() const {
  return std::any_of(Incidents.begin(), Incidents.end(),
                     [](const RootIncident &I) { return !I.Quarantined; });
}

double ReportManager::ruleZ(const std::string &RuleKey) const {
  RuleStats RS;
  if (auto It = Rules.find(RuleKey); It != Rules.end())
    RS = It->second;
  if (auto It = RulePrior.find(RuleKey); It != RulePrior.end()) {
    RS.Examples += It->second.Examples;
    RS.Counterexamples += It->second.Counterexamples;
  }
  if (RS.total() == 0)
    return 0.0;
  return zStatistic(RS.total(), RS.Examples);
}

std::vector<size_t> ReportManager::ranked(RankPolicy Policy) const {
  std::vector<size_t> Order(Reports.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;

  auto GenericLess = [&](size_t A, size_t B) {
    const ErrorReport &RA = Reports[A];
    const ErrorReport &RB = Reports[B];
    // Criterion 4: local errors over interprocedural ones; global errors
    // ordered by the shortest call chain that causes them.
    if (RA.Interprocedural != RB.Interprocedural)
      return !RA.Interprocedural;
    if (RA.Interprocedural && RA.CallChainLength != RB.CallChainLength)
      return RA.CallChainLength < RB.CallChainLength;
    // Criterion 3: direct errors over synonym-mediated ones, then by chain.
    if ((RA.IndirectionDepth == 0) != (RB.IndirectionDepth == 0))
      return RA.IndirectionDepth == 0;
    if (RA.IndirectionDepth != RB.IndirectionDepth)
      return RA.IndirectionDepth < RB.IndirectionDepth;
    // Criteria 1+2: distance with conditionals at 10 lines each.
    if (RA.distanceScore() != RB.distanceScore())
      return RA.distanceScore() < RB.distanceScore();
    return A < B; // Stable fallback.
  };

  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    const ErrorReport &RA = Reports[A];
    const ErrorReport &RB = Reports[B];
    // Severity classes stratify everything.
    if (RA.severityClass() != RB.severityClass())
      return RA.severityClass() < RB.severityClass();
    switch (Policy) {
    case RankPolicy::Generic:
      return GenericLess(A, B);
    case RankPolicy::Statistical:
    case RankPolicy::Combined: {
      double ZA = RA.RuleKey.empty() ? 0.0 : ruleZ(RA.RuleKey);
      double ZB = RB.RuleKey.empty() ? 0.0 : ruleZ(RB.RuleKey);
      if (ZA != ZB)
        return ZA > ZB; // Higher z first: reliable rules' violations on top.
      if (Policy == RankPolicy::Combined)
        return GenericLess(A, B);
      return A < B;
    }
    }
    return A < B;
  });
  return Order;
}

std::map<std::string, std::vector<size_t>> ReportManager::grouped() const {
  std::map<std::string, std::vector<size_t>> Groups;
  for (size_t I = 0; I != Reports.size(); ++I)
    Groups[Reports[I].GroupKey].push_back(I);
  return Groups;
}

std::string mc::historyKey(const ErrorReport &R) {
  std::string Key = R.CheckerName;
  Key += '|';
  Key += R.File;
  Key += '|';
  Key += R.FunctionName;
  Key += '|';
  Key += R.VariableName;
  Key += '|';
  Key += R.Message;
  return Key;
}

unsigned ReportManager::suppress(const std::set<std::string> &Suppressed) {
  size_t Before = Reports.size();
  std::erase_if(Reports, [&](const ErrorReport &R) {
    return Suppressed.count(historyKey(R)) != 0;
  });
  return Before - Reports.size();
}

unsigned
ReportManager::suppressFingerprints(const std::set<uint64_t> &Suppressed) {
  size_t Before = Reports.size();
  std::erase_if(Reports, [&](const ErrorReport &R) {
    return Suppressed.count(R.Fingerprint) != 0;
  });
  return Before - Reports.size();
}

void mc::writeJsonString(raw_ostream &OS, std::string_view S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"': OS << "\\\""; break;
    case '\\': OS << "\\\\"; break;
    case '\n': OS << "\\n"; break;
    case '\t': OS << "\\t"; break;
    case '\r': OS << "\\r"; break;
    default:
      if ((unsigned char)C < 0x20)
        OS.printf("\\u%04x", C);
      else
        OS << C;
    }
  }
  OS << '"';
}

void mc::renderIncidentsJson(raw_ostream &OS,
                             const std::vector<RootIncident> &Incidents) {
  OS << '[';
  for (size_t I = 0; I != Incidents.size(); ++I) {
    const RootIncident &Inc = Incidents[I];
    if (I)
      OS << ", ";
    OS << "{\"root\": ";
    writeJsonString(OS, Inc.Root);
    OS << ", \"checker\": ";
    writeJsonString(OS, Inc.Checker);
    OS << ", \"outcome\": \""
       << (Inc.Quarantined ? "quarantined" : "degraded") << '"';
    if (Inc.Fault)
      OS << ", \"fault\": true"; // Additive: absent means false.
    if (!Inc.Quarantined)
      OS << ", \"stage\": " << Inc.Stage;
    OS << ", \"reason\": ";
    writeJsonString(OS, Inc.Reason);
    OS << '}';
  }
  OS << ']';
}

void mc::renderIncidentsText(raw_ostream &OS,
                             const std::vector<RootIncident> &Incidents) {
  if (Incidents.empty())
    return;
  size_t Quarantined = 0;
  for (const RootIncident &I : Incidents)
    Quarantined += I.Quarantined;
  OS << "analysis incomplete: " << Quarantined << " root(s) quarantined, "
     << (Incidents.size() - Quarantined) << " root(s) degraded\n";
  for (const RootIncident &I : Incidents) {
    OS << "  " << (I.Quarantined ? "quarantined " : "degraded ") << I.Root
       << " [" << I.Checker << ']';
    if (!I.Quarantined)
      OS << " (stage " << I.Stage << ')';
    OS << ": " << I.Reason << '\n';
  }
}

namespace {

/// Local alias so the report array below reads as before.
void jsonEscape(raw_ostream &OS, const std::string &S) {
  writeJsonString(OS, S);
}

} // namespace

void ReportManager::printJson(raw_ostream &OS, RankPolicy Policy) const {
  std::vector<size_t> Order = ranked(Policy);
  OS << "[\n";
  for (size_t Rank = 0; Rank != Order.size(); ++Rank) {
    const ErrorReport &R = Reports[Order[Rank]];
    OS << "  {\"rank\": " << (Rank + 1) << ", \"checker\": ";
    jsonEscape(OS, R.CheckerName);
    OS << ", \"file\": ";
    jsonEscape(OS, R.File);
    OS << ", \"line\": " << R.Line << ", \"function\": ";
    jsonEscape(OS, R.FunctionName);
    OS << ", \"message\": ";
    jsonEscape(OS, R.Message);
    if (!R.Annotation.empty()) {
      OS << ", \"class\": ";
      jsonEscape(OS, R.Annotation);
    }
    if (!R.RuleKey.empty()) {
      OS << ", \"rule\": ";
      jsonEscape(OS, R.RuleKey);
      OS.printf(", \"z\": %.4f", ruleZ(R.RuleKey));
    }
    OS << ", \"interprocedural\": " << (R.Interprocedural ? "true" : "false")
       << ", \"distance\": " << R.DistanceLines << ", \"conditionals\": "
       << R.Conditionals;
    std::string Hex;
    appendHex64(R.Fingerprint, Hex);
    OS << ", \"fingerprint\": \"" << Hex << '"';
    if (auto It = Lifecycle.find(R.Fingerprint); It != Lifecycle.end()) {
      OS << ", \"lifecycle\": ";
      jsonEscape(OS, It->second);
    }
    OS << "}";
    if (Rank + 1 != Order.size())
      OS << ',';
    OS << '\n';
  }
  OS << "]\n";
  if (Incidents.empty())
    return;
  OS << "{\"analysis_incomplete\": ";
  renderIncidentsJson(OS, Incidents);
  OS << "}\n";
}

void ReportManager::print(raw_ostream &OS, RankPolicy Policy) const {
  std::vector<size_t> Order = ranked(Policy);
  for (size_t Rank = 0; Rank != Order.size(); ++Rank) {
    const ErrorReport &R = Reports[Order[Rank]];
    OS << '[' << (Rank + 1) << "] ";
    if (!R.Annotation.empty())
      OS << '<' << R.Annotation << "> ";
    OS << R.File << ':' << R.Line << ": in " << R.FunctionName << ": ["
       << R.CheckerName << "] " << R.Message;
    if (R.Interprocedural)
      OS << " (interprocedural, depth " << R.CallChainLength << ')';
    if (!R.RuleKey.empty())
      OS.printf(" {rule %s z=%.2f}", R.RuleKey.c_str(), ruleZ(R.RuleKey));
    if (auto It = Lifecycle.find(R.Fingerprint); It != Lifecycle.end())
      OS << " [" << It->second << ']';
    OS << '\n';
  }
  renderIncidentsText(OS, Incidents);
}
