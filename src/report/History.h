//===- report/History.h - Cross-version suppression -------------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "History" suppression of Section 8: remember false positives from
/// past versions and suppress them in future versions. Reports are matched
/// by file name, function name, variable names and the error message —
/// fields that are relatively invariant under edits, unlike line numbers.
///
//===----------------------------------------------------------------------===//

#ifndef MC_REPORT_HISTORY_H
#define MC_REPORT_HISTORY_H

#include "report/ReportManager.h"

#include <set>
#include <string>

namespace mc {

/// A persistent set of suppressed report keys.
class HistoryFile {
public:
  /// Loads \p Path; missing files yield an empty history.
  bool load(const std::string &Path);
  /// Writes the current set to \p Path.
  bool save(const std::string &Path) const;

  /// Marks \p R as a known false positive.
  void markFalsePositive(const ErrorReport &R) {
    Keys.insert(historyKey(R));
  }
  void markKey(std::string Key) { Keys.insert(std::move(Key)); }

  bool contains(const ErrorReport &R) const {
    return Keys.count(historyKey(R)) != 0;
  }
  const std::set<std::string> &keys() const { return Keys; }
  size_t size() const { return Keys.size(); }

  /// Removes all suppressed reports from \p RM; returns the count removed.
  unsigned apply(ReportManager &RM) const { return RM.suppress(Keys); }

private:
  std::set<std::string> Keys;
};

} // namespace mc

#endif // MC_REPORT_HISTORY_H
