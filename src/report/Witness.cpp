//===- report/Witness.cpp - Witness rendering --------------------------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "report/Witness.h"

#include "report/ReportManager.h"
#include "support/RawOstream.h"

#include <algorithm>

using namespace mc;

const char *mc::witnessKindName(WitnessStep::Kind K) {
  switch (K) {
  case WitnessStep::Kind::Transition:
    return "transition";
  case WitnessStep::Kind::Branch:
    return "branch";
  case WitnessStep::Kind::Call:
    return "call";
  case WitnessStep::Kind::SummaryApply:
    return "summary";
  case WitnessStep::Kind::Rebind:
    return "rebind";
  }
  return "transition";
}

bool mc::witnessKindFromName(std::string_view Name, WitnessStep::Kind &K) {
  if (Name == "transition")
    K = WitnessStep::Kind::Transition;
  else if (Name == "branch")
    K = WitnessStep::Kind::Branch;
  else if (Name == "call")
    K = WitnessStep::Kind::Call;
  else if (Name == "summary")
    K = WitnessStep::Kind::SummaryApply;
  else if (Name == "rebind")
    K = WitnessStep::Kind::Rebind;
  else
    return false;
  return true;
}

namespace {

/// The annotation that rides on the caret line under the source excerpt.
std::string stepAnnotation(const WitnessStep &S) {
  std::string A;
  switch (S.K) {
  case WitnessStep::Kind::Transition:
    if (S.Object.empty())
      A = "global state: ";
    else
      A = "state " + S.Object + ": ";
    A += S.From.empty() ? std::string("(new)") : S.From;
    A += " -> ";
    A += S.To;
    break;
  case WitnessStep::Kind::Branch:
    A = "branch --> " + S.From;
    break;
  case WitnessStep::Kind::Call:
    A = "call " + S.To;
    break;
  case WitnessStep::Kind::SummaryApply:
    A = "apply summary: " + S.To;
    break;
  case WitnessStep::Kind::Rebind:
    A = "synonym " + S.Object + " <- " + S.From + " (state " + S.To + ")";
    break;
  }
  return A;
}

/// The source line containing byte \p Offset of \p Text, tabs normalized to
/// single spaces so the caret column stays aligned.
std::string lineAround(std::string_view Text, size_t Offset) {
  if (Offset > Text.size())
    Offset = Text.size();
  size_t Begin = Text.rfind('\n', Offset == 0 ? 0 : Offset - 1);
  Begin = (Begin == std::string_view::npos) ? 0 : Begin + 1;
  size_t End = Text.find('\n', Offset);
  if (End == std::string_view::npos)
    End = Text.size();
  std::string Line(Text.substr(Begin, End - Begin));
  std::replace(Line.begin(), Line.end(), '\t', ' ');
  return Line;
}

void renderStep(raw_ostream &OS, const WitnessStep &S,
                const SourceManager &SM) {
  std::string Indent(2 + 2 * size_t(S.Depth), ' ');
  std::string Annot = stepAnnotation(S);
  FullLoc Full = SM.decode(S.Loc);
  if (Full.Line == 0) {
    // No statement to anchor to (e.g. an end-of-path transition).
    OS << Indent << "(end of path) " << Annot << '\n';
    return;
  }
  std::string Prefix;
  {
    raw_string_ostream PS(Prefix);
    PS << Indent << Full.Filename << ':' << Full.Line << ": ";
  }
  OS << Prefix << lineAround(SM.bufferText(S.Loc.fileID()), S.Loc.offset())
     << '\n';
  unsigned Col = Full.Col ? Full.Col - 1 : 0;
  OS << std::string(Prefix.size() + Col, ' ') << "^ " << Annot << '\n';
}

} // namespace

void mc::renderExplainText(raw_ostream &OS, const ReportManager &RM,
                           const SourceManager &SM, RankPolicy Policy,
                           unsigned TopN) {
  std::vector<size_t> Order = RM.ranked(Policy);
  size_t Shown = std::min<size_t>(TopN, Order.size());
  OS << "---- explain: top " << Shown << " of " << Order.size()
     << " report(s) ----\n";
  for (size_t Rank = 0; Rank != Shown; ++Rank) {
    const ErrorReport &R = RM.reports()[Order[Rank]];
    OS << '[' << (Rank + 1) << "] ";
    if (!R.Annotation.empty())
      OS << '<' << R.Annotation << "> ";
    OS << R.File << ':' << R.Line << ": in " << R.FunctionName << ": ["
       << R.CheckerName << "] " << R.Message << '\n';
    if (R.Steps.empty()) {
      OS << "  (no witness recorded)\n";
      continue;
    }
    OS << "  witness (" << R.Steps.size() << " step(s)):\n";
    for (const WitnessStep &S : R.Steps)
      renderStep(OS, S, SM);
    if (R.DroppedSteps)
      OS << "  ... " << R.DroppedSteps << " further step(s) dropped\n";
  }
}
