//===- report/ErrorReport.h - Rule-violation reports ------------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A rule violation found by a checker, carrying every input the ranking
/// machinery of Section 9 consumes: distance, conditionals crossed, degree
/// of indirection, local-vs-interprocedural, severity annotations, the
/// grouping fact, and the statistical rule the violation counts against.
///
//===----------------------------------------------------------------------===//

#ifndef MC_REPORT_ERRORREPORT_H
#define MC_REPORT_ERRORREPORT_H

#include "report/Witness.h"
#include "support/SourceManager.h"

#include <string>
#include <vector>

namespace mc {

/// One reported rule violation.
struct ErrorReport {
  std::string CheckerName;
  std::string Message;

  /// Presentation coordinates.
  std::string File;
  unsigned Line = 0;
  std::string FunctionName;
  /// The program object involved (tree key), "" when none.
  std::string VariableName;

  /// Ranking criterion 1: distance in lines between the error statement and
  /// the statement where the checker started tracking the property.
  unsigned DistanceLines = 0;
  /// Ranking criterion 2: conditionals crossed while the property was live
  /// (each weighted as ten lines of distance).
  unsigned Conditionals = 0;
  /// Ranking criterion 3: length of the synonym assignment chain.
  unsigned IndirectionDepth = 0;
  /// Ranking criterion 4: true when the property crossed a function
  /// boundary; CallChainLength orders interprocedural errors.
  bool Interprocedural = false;
  unsigned CallChainLength = 0;

  /// Severity annotation: "SECURITY" > "ERROR" > "" > "MINOR" (Section 9).
  std::string Annotation;
  /// Errors computed from a common analysis fact share a group key.
  std::string GroupKey;
  /// The statistical rule this violation counts against ("" = none).
  std::string RuleKey;

  /// Raw location for dedup (same checker+point+message+witness-terminal
  /// reported once).
  SourceLoc ErrorLoc;

  /// Terminal-step identity of the witness: the tracked object's key plus
  /// the raw location where the checker started tracking it. Computed
  /// whether or not witness capture is on (dedup must not depend on a
  /// reporting flag): two textually identical reports about *different*
  /// objects at the same point — e.g. two macro expansions on one line —
  /// stay distinct. "" when no object was involved.
  std::string WitnessKey;

  /// The witness path: journal of checker-relevant events on the execution
  /// path that produced this report. Empty unless capture was enabled.
  std::vector<WitnessStep> Steps;
  /// Steps beyond the journal cap that were counted but not kept.
  uint32_t DroppedSteps = 0;

  /// Stable cross-run identity: a content hash of the report's *shape* —
  /// checker, rule, tracked object's tree-key text, message, enclosing
  /// function name, and the path's ShapeTrail — with no source locations,
  /// so it survives code motion. Computed at emission whether or not a
  /// baseline is in use; the persistent lifecycle store keys on it.
  uint64_t Fingerprint = 0;

  /// Severity class index (0 = most severe) used for stratification.
  int severityClass() const {
    if (Annotation == "SECURITY")
      return 0;
    if (Annotation == "ERROR")
      return 1;
    if (Annotation == "MINOR")
      return 3;
    return 2;
  }

  /// The combined distance score of criteria 1+2 (conditionals weighted 10x).
  unsigned distanceScore() const { return DistanceLines + 10 * Conditionals; }
};

} // namespace mc

#endif // MC_REPORT_ERRORREPORT_H
