//===- report/Witness.h - Per-report provenance traces ----------*- C++ -*-===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The witness path of a report: the journal of checker-relevant events the
/// DFS engine recorded while driving the state tuple down the execution path
/// that produced the error. A report's witness is what a human auditor (or
/// downstream triage tooling) replays to decide whether the path is real —
/// the unit of inspection is the path, not the point.
///
/// The journal lives in the engine's per-path state, is copied into the
/// ErrorReport at emission, and is rendered by the `--explain` CLI mode with
/// source-anchored excerpts.
///
//===----------------------------------------------------------------------===//

#ifndef MC_REPORT_WITNESS_H
#define MC_REPORT_WITNESS_H

#include "support/Hash.h"
#include "support/SourceManager.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mc {

class raw_ostream;
class ReportManager;
enum class RankPolicy;

/// One checker-relevant event on the path to an error.
struct WitnessStep {
  enum class Kind : uint8_t {
    Transition,   ///< State machine fired: Object moved From -> To.
    Branch,       ///< Branch decision: From is "true"/"false", Object is the
                  ///< controlling condition's text.
    Call,         ///< Inline descent into callee To at the callsite.
    SummaryApply, ///< Cached exit summary of callee To applied at the
                  ///< callsite (the interprocedural shortcut).
    Rebind,       ///< Synonym created: Object now aliases From (state To).
  };

  Kind K = Kind::Transition;
  /// Statement / condition / callsite location; may be invalid (e.g. an
  /// end-of-path transition has no statement).
  SourceLoc Loc;
  /// Call-chain depth at which the event happened (indentation level).
  unsigned Depth = 0;
  std::string Object; ///< Tracked object key, condition text, or "".
  std::string From;   ///< Source state, branch polarity, or alias source.
  std::string To;     ///< Destination state or callee name.

  friend bool operator==(const WitnessStep &, const WitnessStep &) = default;
};

/// The per-path journal. Copied at path splits along with the rest of the
/// path state, dropped on backtrack, and discarded wholesale when fault
/// containment rolls a root back — witness rollback is free.
struct WitnessJournal {
  /// Cap: keep-first, count the rest. Long paths stay bounded and the
  /// interesting prefix (how the property became live) survives.
  static constexpr size_t MaxSteps = 128;

  std::vector<WitnessStep> Steps;
  uint32_t Dropped = 0;

  void append(WitnessStep S) {
    if (Steps.size() >= MaxSteps) {
      ++Dropped;
      return;
    }
    Steps.push_back(std::move(S));
  }

  friend bool operator==(const WitnessJournal &,
                         const WitnessJournal &) = default;
};

/// The shape accumulator behind stable report fingerprints: a running
/// content hash of the path's checker-relevant events — step kinds, tracked
/// objects' tree-key text, state names, callee names, branch-condition text.
/// Deliberately NO source locations: a fingerprint derived from the trail
/// survives line insertion/deletion and unrelated edits (code motion), the
/// property the persistent baseline store keys on (docs/REPORTS.md).
///
/// Unlike the witness journal this is always on: two plain integers, O(1) to
/// fork-copy at path splits, mixed at exactly the sites the journal appends
/// (plus none of its capture gating), so a report's fingerprint never
/// depends on whether --explain was requested.
struct ShapeTrail {
  uint64_t Hash = kFnvOffsetBasis;
  uint32_t Steps = 0;

  /// Folds one event into the trail. Strings are length-delimited so
  /// adjacent fields cannot alias ("ab"+"c" vs "a"+"bc").
  void mix(WitnessStep::Kind K, std::string_view Object, std::string_view From,
           std::string_view To) {
    Hash = fnv1a64(uint64_t(uint8_t(K)), Hash);
    Hash = fnv1a64(Object, Hash);
    Hash = fnv1a64(uint64_t(Object.size()), Hash);
    Hash = fnv1a64(From, Hash);
    Hash = fnv1a64(uint64_t(From.size()), Hash);
    Hash = fnv1a64(To, Hash);
    Hash = fnv1a64(uint64_t(To.size()), Hash);
    ++Steps;
  }

  friend bool operator==(const ShapeTrail &, const ShapeTrail &) = default;
};

/// Stable lower-case name of \p K ("transition", "branch", "call",
/// "summary", "rebind") — the manifest encoding.
const char *witnessKindName(WitnessStep::Kind K);

/// Inverse of witnessKindName. Returns false on an unknown name.
bool witnessKindFromName(std::string_view Name, WitnessStep::Kind &K);

/// Renders the top-\p TopN ranked reports with their witness paths as the
/// `--explain` view: per step a source-anchored excerpt (caret line annotated
/// with the state change) indented by call-chain depth. Deterministic: reads
/// only report fields and immutable source buffers.
void renderExplainText(raw_ostream &OS, const ReportManager &RM,
                       const SourceManager &SM, RankPolicy Policy,
                       unsigned TopN);

} // namespace mc

#endif // MC_REPORT_WITNESS_H
