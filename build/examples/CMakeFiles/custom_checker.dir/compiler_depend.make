# Empty compiler generated dependencies file for custom_checker.
# This may be replaced when dependencies are built.
