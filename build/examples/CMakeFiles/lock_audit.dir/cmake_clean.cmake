file(REMOVE_RECURSE
  "CMakeFiles/lock_audit.dir/lock_audit.cpp.o"
  "CMakeFiles/lock_audit.dir/lock_audit.cpp.o.d"
  "lock_audit"
  "lock_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
