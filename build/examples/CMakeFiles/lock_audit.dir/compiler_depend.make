# Empty compiler generated dependencies file for lock_audit.
# This may be replaced when dependencies are built.
