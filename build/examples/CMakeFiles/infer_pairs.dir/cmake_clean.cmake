file(REMOVE_RECURSE
  "CMakeFiles/infer_pairs.dir/infer_pairs.cpp.o"
  "CMakeFiles/infer_pairs.dir/infer_pairs.cpp.o.d"
  "infer_pairs"
  "infer_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infer_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
