# Empty compiler generated dependencies file for infer_pairs.
# This may be replaced when dependencies are built.
