file(REMOVE_RECURSE
  "CMakeFiles/two_pass.dir/two_pass.cpp.o"
  "CMakeFiles/two_pass.dir/two_pass.cpp.o.d"
  "two_pass"
  "two_pass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
