# Empty dependencies file for two_pass.
# This may be replaced when dependencies are built.
