
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/mc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mc_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/mc_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/fpp/CMakeFiles/mc_fpp.dir/DependInfo.cmake"
  "/root/repo/build/src/checkers/CMakeFiles/mc_checkers.dir/DependInfo.cmake"
  "/root/repo/build/src/metal/CMakeFiles/mc_metal.dir/DependInfo.cmake"
  "/root/repo/build/src/cfront/CMakeFiles/mc_cfront.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/mc_report.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
