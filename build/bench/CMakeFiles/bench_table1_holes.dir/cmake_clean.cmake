file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_holes.dir/table1_holes.cpp.o"
  "CMakeFiles/bench_table1_holes.dir/table1_holes.cpp.o.d"
  "bench_table1_holes"
  "bench_table1_holes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_holes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
