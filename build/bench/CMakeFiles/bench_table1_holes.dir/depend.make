# Empty dependencies file for bench_table1_holes.
# This may be replaced when dependencies are built.
