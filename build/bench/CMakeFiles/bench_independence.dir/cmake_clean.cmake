file(REMOVE_RECURSE
  "CMakeFiles/bench_independence.dir/independence.cpp.o"
  "CMakeFiles/bench_independence.dir/independence.cpp.o.d"
  "bench_independence"
  "bench_independence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_independence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
