file(REMOVE_RECURSE
  "CMakeFiles/bench_fpp_suppression.dir/fpp_suppression.cpp.o"
  "CMakeFiles/bench_fpp_suppression.dir/fpp_suppression.cpp.o.d"
  "bench_fpp_suppression"
  "bench_fpp_suppression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fpp_suppression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
