# Empty compiler generated dependencies file for bench_fpp_suppression.
# This may be replaced when dependencies are built.
