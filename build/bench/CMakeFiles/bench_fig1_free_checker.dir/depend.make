# Empty dependencies file for bench_fig1_free_checker.
# This may be replaced when dependencies are built.
