file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_free_checker.dir/fig1_free_checker.cpp.o"
  "CMakeFiles/bench_fig1_free_checker.dir/fig1_free_checker.cpp.o.d"
  "bench_fig1_free_checker"
  "bench_fig1_free_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_free_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
