file(REMOVE_RECURSE
  "CMakeFiles/bench_corpus.dir/corpus.cpp.o"
  "CMakeFiles/bench_corpus.dir/corpus.cpp.o.d"
  "bench_corpus"
  "bench_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
