# Empty dependencies file for bench_fig3_lock_checker.
# This may be replaced when dependencies are built.
