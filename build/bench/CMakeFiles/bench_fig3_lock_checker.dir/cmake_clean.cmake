file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_lock_checker.dir/fig3_lock_checker.cpp.o"
  "CMakeFiles/bench_fig3_lock_checker.dir/fig3_lock_checker.cpp.o.d"
  "bench_fig3_lock_checker"
  "bench_fig3_lock_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_lock_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
