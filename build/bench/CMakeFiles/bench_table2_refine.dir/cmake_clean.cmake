file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_refine.dir/table2_refine.cpp.o"
  "CMakeFiles/bench_table2_refine.dir/table2_refine.cpp.o.d"
  "bench_table2_refine"
  "bench_table2_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
