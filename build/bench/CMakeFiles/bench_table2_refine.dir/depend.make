# Empty dependencies file for bench_table2_refine.
# This may be replaced when dependencies are built.
