# Empty compiler generated dependencies file for bench_fig4_caching.
# This may be replaced when dependencies are built.
