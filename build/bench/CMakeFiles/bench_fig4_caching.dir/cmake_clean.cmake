file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_caching.dir/fig4_caching.cpp.o"
  "CMakeFiles/bench_fig4_caching.dir/fig4_caching.cpp.o.d"
  "bench_fig4_caching"
  "bench_fig4_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
