file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_summaries.dir/fig5_summaries.cpp.o"
  "CMakeFiles/bench_fig5_summaries.dir/fig5_summaries.cpp.o.d"
  "bench_fig5_summaries"
  "bench_fig5_summaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_summaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
