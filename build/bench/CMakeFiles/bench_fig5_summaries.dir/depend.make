# Empty dependencies file for bench_fig5_summaries.
# This may be replaced when dependencies are built.
