file(REMOVE_RECURSE
  "CMakeFiles/bench_interproc.dir/interproc.cpp.o"
  "CMakeFiles/bench_interproc.dir/interproc.cpp.o.d"
  "bench_interproc"
  "bench_interproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
