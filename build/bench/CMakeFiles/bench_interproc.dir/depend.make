# Empty dependencies file for bench_interproc.
# This may be replaced when dependencies are built.
