file(REMOVE_RECURSE
  "CMakeFiles/mc_metal.dir/Checker.cpp.o"
  "CMakeFiles/mc_metal.dir/Checker.cpp.o.d"
  "CMakeFiles/mc_metal.dir/MetalChecker.cpp.o"
  "CMakeFiles/mc_metal.dir/MetalChecker.cpp.o.d"
  "CMakeFiles/mc_metal.dir/MetalParser.cpp.o"
  "CMakeFiles/mc_metal.dir/MetalParser.cpp.o.d"
  "CMakeFiles/mc_metal.dir/Pattern.cpp.o"
  "CMakeFiles/mc_metal.dir/Pattern.cpp.o.d"
  "CMakeFiles/mc_metal.dir/State.cpp.o"
  "CMakeFiles/mc_metal.dir/State.cpp.o.d"
  "libmc_metal.a"
  "libmc_metal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_metal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
