# Empty dependencies file for mc_metal.
# This may be replaced when dependencies are built.
