
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metal/Checker.cpp" "src/metal/CMakeFiles/mc_metal.dir/Checker.cpp.o" "gcc" "src/metal/CMakeFiles/mc_metal.dir/Checker.cpp.o.d"
  "/root/repo/src/metal/MetalChecker.cpp" "src/metal/CMakeFiles/mc_metal.dir/MetalChecker.cpp.o" "gcc" "src/metal/CMakeFiles/mc_metal.dir/MetalChecker.cpp.o.d"
  "/root/repo/src/metal/MetalParser.cpp" "src/metal/CMakeFiles/mc_metal.dir/MetalParser.cpp.o" "gcc" "src/metal/CMakeFiles/mc_metal.dir/MetalParser.cpp.o.d"
  "/root/repo/src/metal/Pattern.cpp" "src/metal/CMakeFiles/mc_metal.dir/Pattern.cpp.o" "gcc" "src/metal/CMakeFiles/mc_metal.dir/Pattern.cpp.o.d"
  "/root/repo/src/metal/State.cpp" "src/metal/CMakeFiles/mc_metal.dir/State.cpp.o" "gcc" "src/metal/CMakeFiles/mc_metal.dir/State.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfront/CMakeFiles/mc_cfront.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
