file(REMOVE_RECURSE
  "libmc_report.a"
)
