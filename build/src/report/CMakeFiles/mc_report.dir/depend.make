# Empty dependencies file for mc_report.
# This may be replaced when dependencies are built.
