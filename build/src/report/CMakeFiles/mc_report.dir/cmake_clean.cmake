file(REMOVE_RECURSE
  "CMakeFiles/mc_report.dir/History.cpp.o"
  "CMakeFiles/mc_report.dir/History.cpp.o.d"
  "CMakeFiles/mc_report.dir/ReportManager.cpp.o"
  "CMakeFiles/mc_report.dir/ReportManager.cpp.o.d"
  "libmc_report.a"
  "libmc_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
