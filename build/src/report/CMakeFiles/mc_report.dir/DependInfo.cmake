
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/History.cpp" "src/report/CMakeFiles/mc_report.dir/History.cpp.o" "gcc" "src/report/CMakeFiles/mc_report.dir/History.cpp.o.d"
  "/root/repo/src/report/ReportManager.cpp" "src/report/CMakeFiles/mc_report.dir/ReportManager.cpp.o" "gcc" "src/report/CMakeFiles/mc_report.dir/ReportManager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
