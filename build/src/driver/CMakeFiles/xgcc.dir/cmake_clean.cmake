file(REMOVE_RECURSE
  "CMakeFiles/xgcc.dir/xgcc_main.cpp.o"
  "CMakeFiles/xgcc.dir/xgcc_main.cpp.o.d"
  "xgcc"
  "xgcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xgcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
