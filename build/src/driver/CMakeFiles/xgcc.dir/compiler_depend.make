# Empty compiler generated dependencies file for xgcc.
# This may be replaced when dependencies are built.
