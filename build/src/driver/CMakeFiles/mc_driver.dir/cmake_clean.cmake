file(REMOVE_RECURSE
  "CMakeFiles/mc_driver.dir/Tool.cpp.o"
  "CMakeFiles/mc_driver.dir/Tool.cpp.o.d"
  "libmc_driver.a"
  "libmc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
