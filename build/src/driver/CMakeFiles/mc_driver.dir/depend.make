# Empty dependencies file for mc_driver.
# This may be replaced when dependencies are built.
