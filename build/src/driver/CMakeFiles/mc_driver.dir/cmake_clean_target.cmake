file(REMOVE_RECURSE
  "libmc_driver.a"
)
