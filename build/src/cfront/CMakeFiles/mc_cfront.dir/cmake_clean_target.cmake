file(REMOVE_RECURSE
  "libmc_cfront.a"
)
