# Empty dependencies file for mc_cfront.
# This may be replaced when dependencies are built.
