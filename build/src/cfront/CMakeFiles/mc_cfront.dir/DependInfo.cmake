
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfront/ASTPrinter.cpp" "src/cfront/CMakeFiles/mc_cfront.dir/ASTPrinter.cpp.o" "gcc" "src/cfront/CMakeFiles/mc_cfront.dir/ASTPrinter.cpp.o.d"
  "/root/repo/src/cfront/ASTUtils.cpp" "src/cfront/CMakeFiles/mc_cfront.dir/ASTUtils.cpp.o" "gcc" "src/cfront/CMakeFiles/mc_cfront.dir/ASTUtils.cpp.o.d"
  "/root/repo/src/cfront/Lexer.cpp" "src/cfront/CMakeFiles/mc_cfront.dir/Lexer.cpp.o" "gcc" "src/cfront/CMakeFiles/mc_cfront.dir/Lexer.cpp.o.d"
  "/root/repo/src/cfront/Parser.cpp" "src/cfront/CMakeFiles/mc_cfront.dir/Parser.cpp.o" "gcc" "src/cfront/CMakeFiles/mc_cfront.dir/Parser.cpp.o.d"
  "/root/repo/src/cfront/Preprocessor.cpp" "src/cfront/CMakeFiles/mc_cfront.dir/Preprocessor.cpp.o" "gcc" "src/cfront/CMakeFiles/mc_cfront.dir/Preprocessor.cpp.o.d"
  "/root/repo/src/cfront/Serialize.cpp" "src/cfront/CMakeFiles/mc_cfront.dir/Serialize.cpp.o" "gcc" "src/cfront/CMakeFiles/mc_cfront.dir/Serialize.cpp.o.d"
  "/root/repo/src/cfront/Type.cpp" "src/cfront/CMakeFiles/mc_cfront.dir/Type.cpp.o" "gcc" "src/cfront/CMakeFiles/mc_cfront.dir/Type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
