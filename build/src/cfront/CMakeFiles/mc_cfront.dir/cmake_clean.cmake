file(REMOVE_RECURSE
  "CMakeFiles/mc_cfront.dir/ASTPrinter.cpp.o"
  "CMakeFiles/mc_cfront.dir/ASTPrinter.cpp.o.d"
  "CMakeFiles/mc_cfront.dir/ASTUtils.cpp.o"
  "CMakeFiles/mc_cfront.dir/ASTUtils.cpp.o.d"
  "CMakeFiles/mc_cfront.dir/Lexer.cpp.o"
  "CMakeFiles/mc_cfront.dir/Lexer.cpp.o.d"
  "CMakeFiles/mc_cfront.dir/Parser.cpp.o"
  "CMakeFiles/mc_cfront.dir/Parser.cpp.o.d"
  "CMakeFiles/mc_cfront.dir/Preprocessor.cpp.o"
  "CMakeFiles/mc_cfront.dir/Preprocessor.cpp.o.d"
  "CMakeFiles/mc_cfront.dir/Serialize.cpp.o"
  "CMakeFiles/mc_cfront.dir/Serialize.cpp.o.d"
  "CMakeFiles/mc_cfront.dir/Type.cpp.o"
  "CMakeFiles/mc_cfront.dir/Type.cpp.o.d"
  "libmc_cfront.a"
  "libmc_cfront.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_cfront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
