file(REMOVE_RECURSE
  "libmc_cfg.a"
)
