# Empty dependencies file for mc_cfg.
# This may be replaced when dependencies are built.
