file(REMOVE_RECURSE
  "CMakeFiles/mc_cfg.dir/CFGBuilder.cpp.o"
  "CMakeFiles/mc_cfg.dir/CFGBuilder.cpp.o.d"
  "CMakeFiles/mc_cfg.dir/CallGraph.cpp.o"
  "CMakeFiles/mc_cfg.dir/CallGraph.cpp.o.d"
  "libmc_cfg.a"
  "libmc_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
