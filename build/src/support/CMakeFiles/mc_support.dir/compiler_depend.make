# Empty compiler generated dependencies file for mc_support.
# This may be replaced when dependencies are built.
