file(REMOVE_RECURSE
  "CMakeFiles/mc_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/mc_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/mc_support.dir/RawOstream.cpp.o"
  "CMakeFiles/mc_support.dir/RawOstream.cpp.o.d"
  "CMakeFiles/mc_support.dir/SourceManager.cpp.o"
  "CMakeFiles/mc_support.dir/SourceManager.cpp.o.d"
  "CMakeFiles/mc_support.dir/StringUtils.cpp.o"
  "CMakeFiles/mc_support.dir/StringUtils.cpp.o.d"
  "libmc_support.a"
  "libmc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
