# CMake generated Testfile for 
# Source directory: /root/repo/src/fpp
# Build directory: /root/repo/build/src/fpp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
