# Empty dependencies file for mc_fpp.
# This may be replaced when dependencies are built.
