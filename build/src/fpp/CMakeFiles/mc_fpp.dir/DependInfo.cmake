
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpp/CongruenceClosure.cpp" "src/fpp/CMakeFiles/mc_fpp.dir/CongruenceClosure.cpp.o" "gcc" "src/fpp/CMakeFiles/mc_fpp.dir/CongruenceClosure.cpp.o.d"
  "/root/repo/src/fpp/ValueTracker.cpp" "src/fpp/CMakeFiles/mc_fpp.dir/ValueTracker.cpp.o" "gcc" "src/fpp/CMakeFiles/mc_fpp.dir/ValueTracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metal/CMakeFiles/mc_metal.dir/DependInfo.cmake"
  "/root/repo/build/src/cfront/CMakeFiles/mc_cfront.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
