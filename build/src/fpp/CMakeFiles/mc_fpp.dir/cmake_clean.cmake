file(REMOVE_RECURSE
  "CMakeFiles/mc_fpp.dir/CongruenceClosure.cpp.o"
  "CMakeFiles/mc_fpp.dir/CongruenceClosure.cpp.o.d"
  "CMakeFiles/mc_fpp.dir/ValueTracker.cpp.o"
  "CMakeFiles/mc_fpp.dir/ValueTracker.cpp.o.d"
  "libmc_fpp.a"
  "libmc_fpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_fpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
