file(REMOVE_RECURSE
  "libmc_fpp.a"
)
