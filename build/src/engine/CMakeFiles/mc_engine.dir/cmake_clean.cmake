file(REMOVE_RECURSE
  "CMakeFiles/mc_engine.dir/Engine.cpp.o"
  "CMakeFiles/mc_engine.dir/Engine.cpp.o.d"
  "CMakeFiles/mc_engine.dir/Summaries.cpp.o"
  "CMakeFiles/mc_engine.dir/Summaries.cpp.o.d"
  "libmc_engine.a"
  "libmc_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
