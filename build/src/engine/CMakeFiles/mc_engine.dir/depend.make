# Empty dependencies file for mc_engine.
# This may be replaced when dependencies are built.
