file(REMOVE_RECURSE
  "libmc_engine.a"
)
