file(REMOVE_RECURSE
  "libmc_checkers.a"
)
