file(REMOVE_RECURSE
  "CMakeFiles/mc_checkers.dir/BuiltinCheckers.cpp.o"
  "CMakeFiles/mc_checkers.dir/BuiltinCheckers.cpp.o.d"
  "CMakeFiles/mc_checkers.dir/NativeCheckers.cpp.o"
  "CMakeFiles/mc_checkers.dir/NativeCheckers.cpp.o.d"
  "libmc_checkers.a"
  "libmc_checkers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_checkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
