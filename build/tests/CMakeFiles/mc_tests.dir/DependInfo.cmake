
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/astutils_test.cpp" "tests/CMakeFiles/mc_tests.dir/astutils_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/astutils_test.cpp.o.d"
  "/root/repo/tests/cfg_test.cpp" "tests/CMakeFiles/mc_tests.dir/cfg_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/cfg_test.cpp.o.d"
  "/root/repo/tests/checkers_test.cpp" "tests/CMakeFiles/mc_tests.dir/checkers_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/checkers_test.cpp.o.d"
  "/root/repo/tests/cli_test.cpp" "tests/CMakeFiles/mc_tests.dir/cli_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/cli_test.cpp.o.d"
  "/root/repo/tests/engine_interproc_test.cpp" "tests/CMakeFiles/mc_tests.dir/engine_interproc_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/engine_interproc_test.cpp.o.d"
  "/root/repo/tests/engine_intra_test.cpp" "tests/CMakeFiles/mc_tests.dir/engine_intra_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/engine_intra_test.cpp.o.d"
  "/root/repo/tests/engine_replay_test.cpp" "tests/CMakeFiles/mc_tests.dir/engine_replay_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/engine_replay_test.cpp.o.d"
  "/root/repo/tests/fpp_test.cpp" "tests/CMakeFiles/mc_tests.dir/fpp_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/fpp_test.cpp.o.d"
  "/root/repo/tests/lexer_test.cpp" "tests/CMakeFiles/mc_tests.dir/lexer_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/lexer_test.cpp.o.d"
  "/root/repo/tests/metal_interpreter_test.cpp" "tests/CMakeFiles/mc_tests.dir/metal_interpreter_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/metal_interpreter_test.cpp.o.d"
  "/root/repo/tests/metal_test.cpp" "tests/CMakeFiles/mc_tests.dir/metal_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/metal_test.cpp.o.d"
  "/root/repo/tests/parser_test.cpp" "tests/CMakeFiles/mc_tests.dir/parser_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/parser_test.cpp.o.d"
  "/root/repo/tests/pattern_test.cpp" "tests/CMakeFiles/mc_tests.dir/pattern_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/pattern_test.cpp.o.d"
  "/root/repo/tests/preprocessor_test.cpp" "tests/CMakeFiles/mc_tests.dir/preprocessor_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/preprocessor_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/mc_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/range_test.cpp" "tests/CMakeFiles/mc_tests.dir/range_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/range_test.cpp.o.d"
  "/root/repo/tests/report_test.cpp" "tests/CMakeFiles/mc_tests.dir/report_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/report_test.cpp.o.d"
  "/root/repo/tests/rlock_test.cpp" "tests/CMakeFiles/mc_tests.dir/rlock_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/rlock_test.cpp.o.d"
  "/root/repo/tests/serialize_robustness_test.cpp" "tests/CMakeFiles/mc_tests.dir/serialize_robustness_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/serialize_robustness_test.cpp.o.d"
  "/root/repo/tests/serialize_test.cpp" "tests/CMakeFiles/mc_tests.dir/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/serialize_test.cpp.o.d"
  "/root/repo/tests/summaries_test.cpp" "tests/CMakeFiles/mc_tests.dir/summaries_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/summaries_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/mc_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/tool_test.cpp" "tests/CMakeFiles/mc_tests.dir/tool_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/tool_test.cpp.o.d"
  "/root/repo/tests/torture_test.cpp" "tests/CMakeFiles/mc_tests.dir/torture_test.cpp.o" "gcc" "tests/CMakeFiles/mc_tests.dir/torture_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/mc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mc_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/mc_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/fpp/CMakeFiles/mc_fpp.dir/DependInfo.cmake"
  "/root/repo/build/src/checkers/CMakeFiles/mc_checkers.dir/DependInfo.cmake"
  "/root/repo/build/src/metal/CMakeFiles/mc_metal.dir/DependInfo.cmake"
  "/root/repo/build/src/cfront/CMakeFiles/mc_cfront.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/mc_report.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
