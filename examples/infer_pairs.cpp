//===- examples/infer_pairs.cpp - Bugs as deviant behaviour --------------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's statistical-inference workflow (Sections 3.2 and 9, after
// "Bugs as deviant behavior" [10]): (1) assume functions a and b must be
// paired, (2) count the times they occur together, (3) count the times they
// do not, then rank the violations with the z-statistic so that reliable
// rules surface first.
//
//===----------------------------------------------------------------------===//

#include "checkers/NativeCheckers.h"
#include "driver/Tool.h"
#include "support/RawOstream.h"

using namespace mc;

namespace {

const char *Corpus = R"c(
void spin_lock(int *l);
void spin_unlock(int *l);
int  dma_map(int *buf);
void dma_unmap(int *buf);
void log_event(int *ctx);

/* spin_lock/spin_unlock paired 7 times... */
void w0(int *l) { spin_lock(l); spin_unlock(l); }
void w1(int *l) { spin_lock(l); spin_unlock(l); }
void w2(int *l) { spin_lock(l); spin_unlock(l); }
void w3(int *l) { spin_lock(l); spin_unlock(l); }
void w4(int *l) { spin_lock(l); spin_unlock(l); }
void w5(int *l) { spin_lock(l); spin_unlock(l); }
void w6(int *l) { spin_lock(l); spin_unlock(l); }
/* ...and violated once. */
void w_bug(int *l) { spin_lock(l); }

/* dma_map/dma_unmap paired 4 times, violated once. */
void d0(int *b) { dma_map(b); dma_unmap(b); }
void d1(int *b) { dma_map(b); dma_unmap(b); }
void d2(int *b) { dma_map(b); dma_unmap(b); }
void d3(int *b) { dma_map(b); dma_unmap(b); }
void d_bug(int *b) { dma_map(b); }

/* log_event pairs with nothing: no rule should be inferred. */
void l0(int *c) { log_event(c); }
void l1(int *c) { log_event(c); }
)c";

} // namespace

int main() {
  raw_ostream &OS = outs();
  XgccTool Tool;
  if (!Tool.addSource("corpus.c", Corpus)) {
    errs() << "parse error\n";
    return 1;
  }
  Tool.finalize();

  PairInferenceChecker PI;

  // Pass 1: learn which functions travel together.
  PI.setMode(PairInferenceChecker::Mode::Learn);
  Tool.runChecker(PI);

  OS << "=== Learned pair statistics ===\n";
  for (const auto &[Opener, Closers] : PI.pairCounts()) {
    unsigned Opens = PI.openCounts().count(Opener)
                         ? PI.openCounts().at(Opener)
                         : 0;
    for (const auto &[Closer, Count] : Closers)
      OS.printf("  %-12s -> %-12s  paired %u / opened %u  (z = %.2f)\n",
                Opener.c_str(), Closer.c_str(), Count, Opens,
                zStatistic(Opens, Count));
  }

  const auto &Rules = PI.inferRules(/*MinZ=*/1.0);
  OS << "\n=== Inferred must-pair rules (z >= 1.0) ===\n";
  for (const auto &[Opener, Closer] : Rules)
    OS << "  " << Opener << "() must be followed by " << Closer << "()\n";

  // Pass 2: check the inferred rules; rank violations statistically.
  PI.setMode(PairInferenceChecker::Mode::Check);
  Tool.runChecker(PI);

  OS << "\n=== Violations (statistical ranking) ===\n";
  Tool.reports().print(OS, RankPolicy::Statistical);

  bool Ok = Rules.size() == 2 && Tool.reports().size() == 2;
  OS << '\n'
     << (Ok ? "inferred both real rules, flagged both deviants, and "
              "log_event stayed rule-free.\n"
            : "UNEXPECTED inference results!\n");
  return Ok ? 0 : 1;
}
