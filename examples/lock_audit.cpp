//===- examples/lock_audit.cpp - Auditing a driver for lock bugs ---------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The workload the paper's introduction motivates: systems code full of
// locking and interrupt discipline. Runs the Figure 3 lock checker and the
// global-state interrupt checker over a small "device driver", composed
// with the path-kill (panic) annotator, and prints the ranked findings.
//
//===----------------------------------------------------------------------===//

#include "driver/Tool.h"
#include "support/RawOstream.h"

using namespace mc;

namespace {

const char *Driver = R"c(
/* A miniature character-device driver. */
int trylock(int *l);
void lock(int *l);
void unlock(int *l);
void cli(void);
void sti(void);
void panic(char *msg);
int copy_block(int *dst, int *src, int n);

struct device {
  int state;
  int queue_lock;
  int hw_lock;
};

int dev_ok_path(struct device *dev) {
  lock(&dev->queue_lock);
  dev->state = 1;
  unlock(&dev->queue_lock);
  return 0;
}

int dev_forgets_unlock(struct device *dev, int busy) {
  lock(&dev->queue_lock);
  if (busy)
    return -1;              /* BUG: leaves queue_lock held */
  dev->state = 2;
  unlock(&dev->queue_lock);
  return 0;
}

int dev_trylock_ok(struct device *dev) {
  if (trylock(&dev->hw_lock)) {
    dev->state = 3;
    unlock(&dev->hw_lock);
    return 1;
  }
  return 0;                 /* not acquired: nothing to release */
}

int dev_release_unheld(struct device *dev) {
  if (trylock(&dev->hw_lock) == 0) {
    unlock(&dev->hw_lock);  /* BUG: releasing a lock we failed to get */
    return -1;
  }
  unlock(&dev->hw_lock);
  return 0;
}

int dev_irq_path(struct device *dev, int n) {
  cli();
  dev->state = n;
  sti();
  return 0;
}

int dev_irq_leak(struct device *dev, int n) {
  cli();
  if (n < 0)
    return -1;              /* BUG: interrupts left disabled */
  dev->state = n;
  sti();
  return 0;
}

int dev_panic_path(struct device *dev) {
  lock(&dev->queue_lock);
  if (dev->state == -1) {
    panic("device wedged");
    return -1;              /* not reported: path is dead */
  }
  unlock(&dev->queue_lock);
  return 0;
}
)c";

} // namespace

int main() {
  raw_ostream &OS = outs();
  XgccTool Tool;
  if (!Tool.addSource("driver.c", Driver)) {
    errs() << "parse error\n";
    return 1;
  }
  // Composition order matters: the panic annotator runs first so the lock
  // and interrupt checkers skip dominated paths.
  Tool.addBuiltinChecker("path_kill");
  Tool.addBuiltinChecker("lock");
  Tool.addBuiltinChecker("intr");
  Tool.run();

  OS << "=== Lock/interrupt audit of driver.c ===\n";
  Tool.reports().print(OS, RankPolicy::Generic);
  OS << '\n' << Tool.reports().size() << " report(s); expected 3:\n"
     << "  dev_forgets_unlock (lost lock), dev_release_unheld (bogus\n"
     << "  release), dev_irq_leak (interrupts left disabled).\n"
     << "dev_panic_path stays quiet thanks to checker composition.\n";
  return Tool.reports().size() == 3 ? 0 : 1;
}
