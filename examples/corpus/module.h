/* Shared declarations for the example corpus. */
#ifndef MODULE_H
#define MODULE_H

void kfree(void *p);
void *kmalloc(int n);
int trylock(int *l);
void lock(int *l);
void unlock(int *l);
void panic(char *msg);
int get_user_int(int which);

struct buf {
  char *data;
  int len;
  int cap;
};

struct queue {
  int qlock;
  int count;
  struct buf *items[32];
};

#endif /* MODULE_H */
