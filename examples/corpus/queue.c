#include "module.h"

/* A locked queue with a lost-lock bug and an unchecked allocation. */

int queue_push(struct queue *q, struct buf *item) {
  lock(&q->qlock);
  if (q->count >= 32) {
    unlock(&q->qlock);
    return -1;
  }
  q->items[q->count] = item;
  q->count = q->count + 1;
  unlock(&q->qlock);
  return 0;
}

struct buf *queue_pop(struct queue *q) {
  struct buf *item;
  lock(&q->qlock);
  if (q->count == 0)
    return 0;           /* BUG: returns with qlock held */
  q->count = q->count - 1;
  item = q->items[q->count];
  unlock(&q->qlock);
  return item;
}

int queue_flush(struct queue *q) {
  int *scratch;
  scratch = kmalloc(64);
  *scratch = q->count;  /* BUG: allocation never checked */
  while (q->count > 0) {
    struct buf *item;
    item = queue_pop(q);
    if (!item)
      break;
  }
  kfree(scratch);
  return 0;
}

int queue_try_drain(struct queue *q) {
  if (trylock(&q->qlock)) {
    q->count = 0;
    unlock(&q->qlock);
    return 1;
  }
  return 0;
}
