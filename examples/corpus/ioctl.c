#include "module.h"

/* The user-facing entry point, with a seeded SECURITY bug. */

static int mode_table[8];

int mod_ioctl(int which) {
  int mode;
  mode = get_user_int(which);
  return mode_table[mode];  /* BUG: unchecked user index */
}

int mod_ioctl_checked(int which) {
  int mode;
  mode = get_user_int(which);
  if (mode >= 8)
    return -1;
  return mode_table[mode];
}

int mod_sanity(struct queue *q) {
  if (!q) {
    panic("null queue");
    return q->count;  /* dead path: suppressed by path_kill */
  }
  return 0;
}
