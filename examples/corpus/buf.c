#include "module.h"

/* Buffer management with two seeded free-discipline bugs. */

struct buf *buf_new(int cap) {
  struct buf *b;
  b = kmalloc(sizeof(struct buf));
  if (!b)
    return 0;
  b->data = kmalloc(cap);
  if (!b->data) {
    kfree(b);
    return 0;
  }
  b->len = 0;
  b->cap = cap;
  return b;
}

int buf_grow(struct buf *b, int newcap) {
  char *bigger;
  bigger = kmalloc(newcap);
  if (!bigger)
    return -1;
  kfree(b->data);
  b->len = b->data[0];  /* BUG: reads the freed buffer */
  b->data = bigger;
  b->cap = newcap;
  return 0;
}

int buf_shrink(struct buf *b, int newcap) {
  char *smaller;
  smaller = kmalloc(newcap);
  if (!smaller) {
    kfree(b->data);
    kfree(b->data);     /* BUG: double free on the error path */
    return -1;
  }
  kfree(b->data);
  b->data = smaller;
  b->cap = newcap;
  return 0;
}

void buf_free(struct buf *b) {
  if (!b)
    return;
  kfree(b->data);
  kfree(b);
}
