//===- examples/two_pass.cpp - The paper's two-pass architecture ---------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Section 6's pipeline as a library user sees it: pass 1 compiles each file
// in isolation and emits ASTs to disk; pass 2 reloads the images (possibly
// on another machine, much later), reassembles one call graph across
// translation units, and runs the checkers. The reports are identical to a
// direct single-process run — verified at the end.
//
//===----------------------------------------------------------------------===//

#include "driver/Tool.h"
#include "support/RawOstream.h"

#include <cstdio>

using namespace mc;

namespace {

// Two translation units that only exhibit the bug when linked: a.c frees
// through release(), b.c defines it.
const char *FileA = R"c(
void release(int *x);
int use_after_release(int *p) {
  release(p);
  return *p;           /* bug: only visible interprocedurally */
}
)c";

const char *FileB = R"c(
void kfree(void *p);
void release(int *x) { kfree(x); }
)c";

} // namespace

int main() {
  raw_ostream &OS = outs();
  std::string MastA = "/tmp/mc_two_pass_a.mast";
  std::string MastB = "/tmp/mc_two_pass_b.mast";

  //===------------------------------------------------------------------===//
  // Pass 1: each file compiled in isolation (as a build system would).
  //===------------------------------------------------------------------===//
  {
    XgccTool Compile;
    if (!Compile.addSource("a.c", FileA) || !Compile.emitMast(MastA))
      return 1;
  }
  {
    XgccTool Compile;
    if (!Compile.addSource("b.c", FileB) || !Compile.emitMast(MastB))
      return 1;
  }
  std::string ImageA, ImageB;
  readFileBytes(MastA, ImageA);
  readFileBytes(MastB, ImageB);
  OS << "pass 1: emitted " << ImageA.size() << " + " << ImageB.size()
     << " bytes of AST images\n";

  //===------------------------------------------------------------------===//
  // Pass 2: reload both images, link declarations by name, analyze.
  //===------------------------------------------------------------------===//
  XgccTool Analyze;
  if (!Analyze.addMastFile(MastA) || !Analyze.addMastFile(MastB))
    return 1;
  Analyze.addBuiltinChecker("free");
  Analyze.run();

  OS << "pass 2: reports from the reassembled program\n";
  Analyze.reports().print(OS, RankPolicy::Generic);

  //===------------------------------------------------------------------===//
  // Cross-check against a direct run over the sources.
  //===------------------------------------------------------------------===//
  XgccTool Direct;
  Direct.addSource("a.c", FileA);
  Direct.addSource("b.c", FileB);
  Direct.addBuiltinChecker("free");
  Direct.run();

  bool Agree = Direct.reports().size() == Analyze.reports().size();
  for (size_t I = 0; Agree && I < Direct.reports().size(); ++I)
    Agree = Direct.reports().reports()[I].Message ==
            Analyze.reports().reports()[I].Message;
  OS << (Agree ? "\ntwo-pass and direct runs agree.\n"
               : "\nWARNING: two-pass and direct runs disagree!\n");

  remove(MastA.c_str());
  remove(MastB.c_str());
  return Agree && Analyze.reports().size() == 1 ? 0 : 1;
}
