//===- examples/custom_checker.cpp - Writing your own metal checker ------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// How a systems implementer extends the system: write a new rule in metal
// (here: "blocking functions must not be called with interrupts disabled",
// a classic kernel rule the paper's family of checkers covers), compile it
// at runtime, and run it — no engine changes required.
//
//===----------------------------------------------------------------------===//

#include "driver/Tool.h"
#include "support/RawOstream.h"

using namespace mc;

namespace {

// The rule, in metal. A single global state variable tracks the interrupt
// level; calling a blocking allocator while disabled is the violation, and
// user-triggerable paths are promoted to SECURITY.
const char *NoSleepChecker = R"metal(
sm no_sleep_in_atomic;
decl any_arguments args;

start:
  { cli() } ==> atomic
| { disable_irqs() } ==> atomic
;

atomic:
  { sti() } ==> start
| { enable_irqs() } ==> start
| { sleep_alloc(args) } ==> atomic,
    { err("blocking sleep_alloc() call while interrupts are disabled"); }
| { wait_event(args) } ==> atomic,
    { err("blocking wait_event() call while interrupts are disabled");
      path_annotate("ERROR"); }
| $end_of_path$ ==> atomic, { err("interrupts never re-enabled"); }
;
)metal";

const char *Kernel = R"c(
void cli(void);
void sti(void);
void disable_irqs(void);
void enable_irqs(void);
void *sleep_alloc(int n);
int wait_event(int *q);

int good(int n) {
  void *p;
  p = sleep_alloc(n);   /* fine: interrupts enabled */
  cli();
  n = n + 1;
  sti();
  return n;
}

int bad_alloc(int n) {
  void *p;
  cli();
  p = sleep_alloc(n);   /* BUG: may sleep with interrupts off */
  sti();
  return n;
}

int bad_wait(int *q, int n) {
  disable_irqs();
  if (n)
    wait_event(q);      /* BUG */
  enable_irqs();
  return 0;
}

int helper_disables(void) {
  cli();
  return 0;             /* BUG: leaks disabled state to callers */
}
int caller(void) {
  helper_disables();
  return 0;
}
)c";

} // namespace

int main() {
  raw_ostream &OS = outs();
  OS << "=== A custom rule in metal ===\n" << NoSleepChecker << '\n';

  XgccTool Tool;
  if (!Tool.addSource("kernel.c", Kernel)) {
    errs() << "parse error\n";
    return 1;
  }
  if (!Tool.addMetalChecker(NoSleepChecker, "no_sleep.metal")) {
    errs() << "metal compile error\n";
    return 1;
  }
  Tool.run();

  OS << "=== Findings ===\n";
  Tool.reports().print(OS, RankPolicy::Generic);
  OS << '\n' << Tool.reports().size()
     << " report(s); expected 3 (sleep_alloc, wait_event, leaked cli).\n";
  return Tool.reports().size() == 3 ? 0 : 1;
}
