//===- examples/quickstart.cpp - Five-minute tour ------------------------------===//
//
// Part of the metal/xgcc reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The smallest useful program: compile the paper's Figure 1 free checker,
// run it over the paper's Figure 2 example, and print the ranked reports.
// Also shows the same checker written against the native C++ API.
//
//===----------------------------------------------------------------------===//

#include "checkers/NativeCheckers.h"
#include "driver/Tool.h"
#include "support/RawOstream.h"

using namespace mc;

namespace {

// The paper's Figure 2 example code, with its two seeded bugs.
const char *Figure2 = R"c(
void kfree(void *p);

int contrived(int *p, int *w, int x) {
  int *q;

  if (x) {
    kfree(w);
    q = p;
    p = 0;
  }
  if (!x)
    return *w;  /* safe */
  return *q;    /* using 'q' after free! */
}

int contrived_caller(int *w, int x, int *p) {
  kfree(p);
  contrived(p, w, x);
  return *w;    /* using 'w' after free! */
}
)c";

} // namespace

int main() {
  raw_ostream &OS = outs();

  //===------------------------------------------------------------------===//
  // 1. The metal checker (Figure 1), exactly as the paper writes it.
  //===------------------------------------------------------------------===//
  OS << "=== The Figure 1 free checker (metal) ===\n"
     << builtinCheckerSource("free") << '\n';

  XgccTool Tool;
  if (!Tool.addSource("fig2.c", Figure2)) {
    errs() << "parse error\n";
    return 1;
  }
  Tool.addBuiltinChecker("free");
  Tool.run();

  OS << "=== Reports (generic ranking) ===\n";
  Tool.reports().print(OS, RankPolicy::Generic);

  const EngineStats &S = Tool.stats();
  OS << "\n=== Engine work ===\n";
  OS << "program points visited: " << S.PointsVisited << '\n';
  OS << "paths explored:         " << S.PathsExplored << '\n';
  OS << "false paths pruned:     " << S.PathsPruned << '\n';
  OS << "kills applied:          " << S.KillsApplied << '\n';
  OS << "synonyms created:       " << S.SynonymsCreated << '\n';

  //===------------------------------------------------------------------===//
  // 2. The same checker written against the native C++ API.
  //===------------------------------------------------------------------===//
  XgccTool Native;
  Native.addSource("fig2.c", Figure2);
  Native.addChecker(std::make_unique<NativeFreeChecker>());
  Native.run();

  OS << "\n=== Same analysis, native C++ checker ===\n";
  Native.reports().print(OS, RankPolicy::Generic);

  bool Agree = Native.reports().size() == Tool.reports().size();
  OS << (Agree ? "\nmetal and native checkers agree.\n"
               : "\nWARNING: metal and native checkers disagree!\n");
  return Agree ? 0 : 1;
}
